#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus a perf smoke, run over the
# kernel build matrix {float64, float32} × {asm, noasm}: both tensor
# dtypes (see internal/tensor/dtype64.go / dtype32.go) and, for each,
# the `noasm` build that compiles the AVX2+FMA GEMM micro-kernel out
# (see internal/tensor/gemm.go). The primary (asm) suites additionally
# re-run the engine-equivalence gates with MDGAN_GEMM_KERNEL=generic,
# so the pure-Go micro-kernel on an asm build is gated too — every
# kernel variant must hold the strict-engine bitwise pin.
#
#   scripts/verify.sh              # fmt, vet, build, test, bench smoke × matrix
#   MDGAN_DTYPES=float64 scripts/verify.sh
#                                  # restrict to one dtype (float64|float32|both)
#   MDGAN_KERNELS=asm scripts/verify.sh
#                                  # restrict the kernel axis (asm|noasm|both);
#                                  # noasm suites run vet/build/test + the
#                                  # engine gates (no race, no bench rows)
#   MDGAN_CHAOS=off scripts/verify.sh
#                                  # skip the named chaos/fault gates (they
#                                  # still run inside the plain test suites)
#   BENCH_JSON=BENCH_1.json scripts/verify.sh
#                                  # additionally (re)generate the perf
#                                  # trajectory file via cmd/mdgan-bench,
#                                  # one set of rows per dtype
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

dtypes=${MDGAN_DTYPES:-both}
kernels=${MDGAN_KERNELS:-both}
chaos=${MDGAN_CHAOS:-on}

engine_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    # Explicit gates for the round-engine contracts (also part of the
    # plain test run, but named here so a failure is unmissable):
    # strict mode must replay serial Algorithm 1 bitwise, and the
    # pipelined driver must match strict at Iters=1 and converge with
    # it at full length.
    echo "== [$name] engine equivalence gates =="
    go test "$@" -count=1 \
        -run 'TestStrictEngineMatchesSerialReference|TestPipelinedOneIterationMatchesStrict|TestPipelinedConvergesLikeStrict' \
        ./internal/core
}

run_suite() { # $1 = dtype name, $2 = go build tags ("" for none)
    local name=$1 tags=$2 tagargs=()
    if [ -n "$tags" ]; then
        tagargs=(-tags "$tags")
    fi
    # ${tagargs[@]+...}: expanding an EMPTY array under `set -u` is an
    # "unbound variable" error on bash < 4.4 (macOS ships 3.2).
    echo "== [$name] go vet =="
    go vet ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go build =="
    go build ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test =="
    go test ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test -race =="
    # The race gate: the work-stealing scheduler, the buffer-reuse
    # paths and the simnet transports all run under the detector, at
    # both element widths.
    go test -race ${tagargs[@]+"${tagargs[@]}"} ./...

    engine_gates "$name" ${tagargs[@]+"${tagargs[@]}"}
    # The same gates under the portable Go micro-kernel: the strict-
    # engine pin must hold for every kernel variant the binary can
    # dispatch to, not just the one the CPU probe picked.
    MDGAN_GEMM_KERNEL=generic engine_gates "$name/generic-kernel" ${tagargs[@]+"${tagargs[@]}"}

    chaos_gates "$name" ${tagargs[@]+"${tagargs[@]}"}

    echo "== [$name] bench smoke (1 iteration) =="
    go test ${tagargs[@]+"${tagargs[@]}"} -run=NONE -bench='BenchmarkMDGANIteration$|BenchmarkGeneratorForward$|BenchmarkTableII$' -benchtime=1x -benchmem .

    if [ -n "${BENCH_JSON:-}" ]; then
        echo "== [$name] writing ${BENCH_JSON} rows =="
        go run ${tagargs[@]+"${tagargs[@]}"} ./cmd/mdgan-bench -dtype "${name%%-*}" -benchjson "${BENCH_JSON}"
    fi
}

chaos_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    [ "$chaos" = off ] && return 0
    # Named fault-tolerance gates, under the race detector: the K=8
    # chaos soaks (both synchronous drivers over a seeded ChaosNet),
    # the deadline/suspect/rejoin and corrupt-frame regressions — all
    # of which assert no goroutine leaks across Train's exit paths —
    # and the bitwise strict pin with the round deadline armed.
    echo "== [$name] chaos & fault-tolerance gates (-race) =="
    go test -race "$@" -count=1 \
        -run 'TestChaosSoak|TestRoundDeadlineSuspectsStragglerAndRejoins|TestRoundDeadlineEscalatesToDemotion|TestCorruptFeedbackKeepsTraining|TestAsyncTimeoutDemotesUnresponsiveWorkers|TestAsyncCorruptFeedbackKeepsTraining|TestDeadlineFaultFreeKeepsStrictPin|TestTrainErrorPathStopsWorkers' \
        ./internal/core
    go test -race "$@" -count=1 -run 'TestChaos|TestTCP' ./internal/simnet
}

run_noasm_suite() { # $1 = dtype name, $2 = go build tags (includes noasm)
    # The noasm leg of the kernel matrix: vet, build, the full test
    # suite and the engine gates with the assembly compiled out. Race
    # and bench rows stay on the primary suites — this leg exists to
    # prove the portable build is complete and correct on its own.
    local name=$1 tags=$2
    echo "== [$name] go vet =="
    go vet -tags "$tags" ./...
    echo "== [$name] go build =="
    go build -tags "$tags" ./...
    echo "== [$name] go test =="
    go test -tags "$tags" ./...
    engine_gates "$name" -tags "$tags"
}

want_dtype() { # $1 = float64|float32
    [ "$dtypes" = both ] || [ "$dtypes" = "$1" ]
}

case "$dtypes" in
float64 | float32 | both) ;;
*)
    echo "MDGAN_DTYPES must be float64, float32 or both (got '$dtypes')" >&2
    exit 1
    ;;
esac

case "$kernels" in
asm | noasm | both) ;;
*)
    echo "MDGAN_KERNELS must be asm, noasm or both (got '$kernels')" >&2
    exit 1
    ;;
esac

if [ "$kernels" != noasm ]; then
    if want_dtype float64; then run_suite float64 ""; fi
    if want_dtype float32; then run_suite float32 f32; fi
fi
if [ "$kernels" != asm ]; then
    if want_dtype float64; then run_noasm_suite float64-noasm noasm; fi
    if want_dtype float32; then run_noasm_suite float32-noasm f32,noasm; fi
fi

echo "verify: OK"
