#!/usr/bin/env bash
# benchdiff.sh — advisory perf-trajectory diff between two BENCH_<n>.json
# reports (the cmd/mdgan-bench -benchjson output).
#
#   scripts/benchdiff.sh                           # newest BENCH_<n> vs BENCH_<n-1>
#   scripts/benchdiff.sh BENCH_9.json              # explicit new, baseline auto-picked as n-1
#   scripts/benchdiff.sh BENCH_9.json BENCH_7.json # both explicit
#
# Regressions (>10% worse ns/op, GFLOP/s or B/op) are flagged with a
# "!!" prefix in the output, but the exit status stays 0 whenever the
# diff could run — perf on shared hosts is noisy, so verify.sh wires
# this in as a non-gating step. Missing files or rows are tolerated:
# with no baseline to compare against the script says so and exits 0.
set -euo pipefail
cd "$(dirname "$0")/.."

new="${1:-}"
base="${2:-}"
if [ -z "$new" ]; then
    new=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)
fi
if [ -z "$new" ] || [ ! -f "$new" ]; then
    echo "benchdiff: no BENCH_<n>.json report to diff (nothing to do)"
    exit 0
fi
if [ -z "$base" ]; then
    n=$(basename "$new" | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/p')
    if [ -n "$n" ] && [ "$n" -gt 0 ]; then
        base="BENCH_$((n - 1)).json"
    fi
fi
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "benchdiff: no baseline for $new (nothing to compare against)"
    exit 0
fi
exec go run ./cmd/mdgan-bench -benchdiff "$new" -baseline "$base"
