package mdgan_test

// One benchmark per table and figure of the paper's evaluation section
// (DESIGN.md §4 maps each artifact to its modules), plus
// micro-benchmarks of the kernels the system is built on. The
// experiment benchmarks print their series once, so
// `go test -bench=. -benchmem` regenerates the same rows the paper
// reports; absolute values come from the synthetic substitutes, shapes
// are the reproduction target (EXPERIMENTS.md records both).

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"mdgan"
)

// benchScale trims the quick scale further so the full -bench=. suite
// stays in the minutes range. cmd/mdgan-bench runs bigger scales.
var benchScale = mdgan.Scale{
	TrainSamples: 1000,
	Iters:        200,
	EvalEvery:    100,
	EvalSamples:  150,
	Workers:      8,
	ImgSize:      16,
	MLPHidden:    48,
}

// workerSweep aliases the canonical cluster-size axis so every
// benchmark here stays in lockstep with the BENCH_<n>.json rows.
var workerSweep = mdgan.WorkerSweep

// figScale returns benchScale with the worker count overridden by the
// MDGAN_BENCH_WORKERS env var, so the training-backed figure sweeps
// (Fig3/Fig5/Fig6) re-run at any cluster size without recompiling:
//
//	MDGAN_BENCH_WORKERS=25 go test -bench='Fig3|Fig5'
func figScale() mdgan.Scale {
	sc := benchScale
	if v := os.Getenv("MDGAN_BENCH_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			sc.Workers = n
		}
	}
	return sc
}

var printOnce sync.Map

func printEach(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(s)
	}
}

// BenchmarkTableII regenerates the computation/memory complexity table.
func BenchmarkTableII(b *testing.B) {
	p := mdgan.PaperMNISTComplexity()
	p.B, p.I = 10, 50000
	var t mdgan.TableII
	for i := 0; i < b.N; i++ {
		t = mdgan.ComputeTableII(p)
	}
	_ = t
	printEach("table2", mdgan.FormatTableII("MNIST MLP", p)+
		mdgan.FormatTableII("CIFAR10 CNN", mdgan.PaperCIFARComplexity()))
}

// BenchmarkTableIII regenerates the symbolic communication table.
func BenchmarkTableIII(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = mdgan.TableIIIFormulas()
	}
	printEach("table3", s)
}

// BenchmarkTableIV regenerates the instantiated CIFAR10 costs.
func BenchmarkTableIV(b *testing.B) {
	p := mdgan.PaperCIFARComplexity()
	var rows []mdgan.TableIVRow
	for i := 0; i < b.N; i++ {
		rows = mdgan.ComputeTableIV(p, []int{10, 100})
	}
	printEach("table4", mdgan.FormatTableIV(rows))
}

// BenchmarkFig2 regenerates the ingress-traffic sweep of Figure 2,
// parameterised by cluster size: the server ingress lines scale with N,
// so each worker count is its own sub-benchmark and series.
func BenchmarkFig2(b *testing.B) {
	batches := []int{1, 10, 100, 1000, 10000}
	for _, n := range workerSweep {
		b.Run(fmt.Sprintf("K=%d", n), func(b *testing.B) {
			mnist := mdgan.PaperMNISTComplexity()
			cifar := mdgan.PaperCIFARComplexity()
			mnist.N, cifar.N = n, n
			var s mdgan.Fig2Series
			for i := 0; i < b.N; i++ {
				s = mdgan.ComputeFig2(mnist, batches)
			}
			printEach(fmt.Sprintf("fig2-%d", n),
				mdgan.FormatFig2(fmt.Sprintf("MNIST N=%d", n), mnist, s)+
					mdgan.FormatFig2(fmt.Sprintf("CIFAR10 N=%d", n), cifar, mdgan.ComputeFig2(cifar, batches)))
		})
	}
}

// BenchmarkFig3 regenerates the score/FID trajectories of Figure 3 —
// one sub-benchmark per panel (MNIST-MLP, MNIST-CNN, CIFAR10-CNN), six
// competitors each.
func BenchmarkFig3(b *testing.B) {
	for _, panel := range []mdgan.Fig3Panel{mdgan.Fig3MNISTMLP, mdgan.Fig3MNISTCNN, mdgan.Fig3CIFARCNN} {
		b.Run(string(panel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				curves, err := mdgan.RunFig3(panel, figScale())
				if err != nil {
					b.Fatal(err)
				}
				printEach("fig3-"+string(panel),
					mdgan.FormatCurves(fmt.Sprintf("Figure 3 / %s", panel), curves))
			}
		})
	}
}

// BenchmarkFig4 regenerates the scalability sweep of Figure 4 (the
// training runs behind it are where K simulated workers exercise the
// scheduler hardest). It trains to convergence at every point, so the
// sweep is capped at 50 workers — the 100–500 tail of WorkerSweep is
// covered by the single-iteration BenchmarkMDGANIterationK rows, not
// by full training runs.
func BenchmarkFig4(b *testing.B) {
	ns := fig4Sweep(workerSweep)
	for i := 0; i < b.N; i++ {
		rows, err := mdgan.RunFig4(ns, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printEach("fig4", mdgan.FormatFig4(rows))
	}
}

// fig4Sweep caps the training-backed Figure 4 axis at 50 workers.
func fig4Sweep(sweep []int) []int {
	var out []int
	for _, n := range sweep {
		if n <= 50 {
			out = append(out, n)
		}
	}
	return out
}

// BenchmarkFig5 regenerates the fault-tolerance curves of Figure 5.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := mdgan.RunFig5(mdgan.Fig3MNISTMLP, figScale())
		if err != nil {
			b.Fatal(err)
		}
		printEach("fig5", mdgan.FormatCurves("Figure 5: crashes every I/N iterations", curves))
	}
}

// BenchmarkFig6 regenerates the larger-dataset validation of Figure 6.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := mdgan.RunFig6(figScale())
		if err != nil {
			b.Fatal(err)
		}
		printEach("fig6", mdgan.FormatCurves("Figure 6: faces (CelebA stand-in)", curves))
	}
}

// --- kernel micro-benchmarks ---------------------------------------

// BenchmarkMDGANIteration measures one full synchronous global
// iteration (generate, distribute, L disc steps on 8 workers, feedback,
// merge, Adam) on the scaled MLP.
func BenchmarkMDGANIteration(b *testing.B) {
	train := mdgan.SynthDigits(800, 1)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10, Iters: b.N, Seed: 2, K: 2,
	}
	b.ResetTimer()
	if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMDGANIterationPipelined is BenchmarkMDGANIteration under the
// pipelined engine: the server generates round t+1 while the workers
// compute round t. On a single core this measures pure stage-reordering
// overhead (parity with strict is the bar); the overlap win needs
// enough cores for the workers to actually run concurrently.
func BenchmarkMDGANIterationPipelined(b *testing.B) {
	train := mdgan.SynthDigits(800, 1)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10, Iters: b.N, Seed: 2, K: 2,
		Pipeline: true,
	}
	b.ResetTimer()
	if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMDGANIterationK sweeps the synchronous global iteration over
// cluster sizes K=1..50 (the Fig. 2-style axis): every simulated worker
// drives its own conv/matmul kernels, so aggregate throughput measures
// how well worker- and kernel-level parallelism compose on the
// work-stealing scheduler. worker-steps/sec is the aggregate rate of
// per-worker discriminator iterations.
// Each K runs twice: the paper's flat star, and the depth-2 aggregation
// tree that bounds server ingress by its fan-in — the names match the
// BENCH_<n>.json rows, so the flat-vs-tree crossover is measurable on
// the same axis.
func BenchmarkMDGANIterationK(b *testing.B) {
	for _, k := range workerSweep {
		for _, topo := range []string{"", "tree:2"} {
			name := fmt.Sprintf("K=%d", k)
			if topo != "" {
				name += "/topology=" + topo
			}
			b.Run(name, func(b *testing.B) {
				train := mdgan.SynthDigits(1600, 1)
				o := mdgan.Options{
					Algorithm: mdgan.MDGAN, Workers: k, Batch: 10, Iters: b.N, Seed: 2,
					Topology: topo,
				}
				b.ResetTimer()
				if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "worker-steps/sec")
			})
		}
	}
}

// BenchmarkFLGANRound measures FL-GAN at the same per-iteration scale.
func BenchmarkFLGANRound(b *testing.B) {
	train := mdgan.SynthDigits(800, 1)
	o := mdgan.Options{
		Algorithm: mdgan.FLGAN, Workers: 8, Batch: 10, Iters: b.N, Seed: 2,
	}
	b.ResetTimer()
	if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStandaloneIteration is the single-node reference.
func BenchmarkStandaloneIteration(b *testing.B) {
	train := mdgan.SynthDigits(800, 1)
	o := mdgan.Options{
		Algorithm: mdgan.Standalone, Batch: 10, Iters: b.N, Seed: 2,
	}
	b.ResetTimer()
	if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGeneratorForward measures raw generator throughput.
func BenchmarkGeneratorForward(b *testing.B) {
	g := mdgan.MLPArch(128).NewGAN(1, 0, 1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.G.Generate(32, rng, true)
	}
}

// BenchmarkScorerFID measures one FID evaluation (features + cov +
// matrix sqrt) at the paper's 500-sample setting.
func BenchmarkScorerFID(b *testing.B) {
	test := mdgan.SynthDigits(1200, 3)
	scorer := mdgan.TrainScorer(test, 3)
	gen := mdgan.SynthDigits(500, 4)
	real := mdgan.SynthDigits(500, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scorer.FID(real.X, gen.X); err != nil {
			b.Fatal(err)
		}
	}
}
