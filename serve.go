package mdgan

// The serving facade: mdgan-train produces a generator checkpoint,
// NewSampleServer turns it into an HTTP sampling service
// (internal/serve — request coalescing into batched forwards, replica
// ownership, atomic hot-reload; see that package's doc for the
// contracts). Command mdgan-serve is the daemon wrapper.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"mdgan/internal/gan"
	"mdgan/internal/serve"
)

// SampleServer coalesces concurrent sampling requests into batched
// generator forwards and hot-reloads checkpoints. It implements
// http.Handler (POST /sample, GET /healthz, GET /statusz, POST /reload,
// GET /preview).
type SampleServer = serve.Server

// ServeStatus is the /statusz JSON schema.
type ServeStatus = serve.Status

// ServeOptions configures NewSampleServer. Arch and Checkpoint are
// required; zero values elsewhere select the serving defaults
// (MaxBatch 64, MaxWait 2ms, one replica).
type ServeOptions struct {
	// Arch is the served generator's architecture — checkpoints store
	// parameters only, so the architecture must match the one trained.
	Arch Arch
	// Checkpoint is the SaveGenerator file to serve. Reload re-reads
	// the same path, so a trainer may keep rewriting it (SaveGenerator
	// renames atomically; a reader never sees a half-written file).
	Checkpoint string

	MaxBatch int           // max samples fused into one forward
	MaxWait  time.Duration // batch-window length
	Replicas int           // independent generator copies (multi-core hosts)
	Seed     int64         // latent-stream seed
	// PreviewSamples caps the /preview cache (0 → 16, <0 disables).
	PreviewSamples int
	// Unconditional builds the generator without the ACGAN class
	// embedding — required for checkpoints trained with ClsWeight 0 on
	// a conditional architecture.
	Unconditional bool
}

// NewSampleServer loads the checkpoint and starts the coalescer; stop
// it with Close. See internal/serve for endpoint and reload semantics.
func NewSampleServer(o ServeOptions) (*SampleServer, error) {
	if o.Arch.BuildG == nil {
		return nil, errors.New("mdgan: ServeOptions.Arch is required")
	}
	if o.Checkpoint == "" {
		return nil, errors.New("mdgan: ServeOptions.Checkpoint is required")
	}
	cond := o.Arch.Classes
	if o.Unconditional {
		cond = 0
	}
	arch := o.Arch
	return serve.NewServer(serve.Config{
		New: func() *Generator {
			// Shapes are all that matter here — Load overwrites every
			// parameter — so the init seed is arbitrary.
			rng := rand.New(rand.NewSource(1))
			return gan.NewGenerator(arch.BuildG(rng), arch.ZDim, cond, rng)
		},
		Load:           func(g *Generator) error { return LoadGenerator(g, o.Checkpoint) },
		MaxBatch:       o.MaxBatch,
		MaxWait:        o.MaxWait,
		Replicas:       o.Replicas,
		Seed:           o.Seed,
		PreviewSamples: o.PreviewSamples,
	})
}

// ArchByName resolves a textual architecture name — the CLI surface
// (mdgan-serve -arch, matching what mdgan-train trained):
//
//	ring                     the Gaussian-ring toy MLP
//	mlp:<h>                  width-h MLP for 28×28 digits (mlp:128 = ArchFor digits)
//	paper-mlp                the paper's exact MLP (716,560 G params)
//	paper-cnn-mnist          the paper-shaped CNN for MNIST
//	paper-cnn-cifar          the paper-shaped CNN for CIFAR10
//	faces                    the Fig. 6 CelebA-style CNN
//	cnn:<c>x<size>x<classes> scaled CNN, e.g. cnn:3x32x10
func ArchByName(name string) (Arch, error) {
	switch {
	case name == "ring":
		return RingArch(), nil
	case name == "paper-mlp":
		return PaperMLPArch(), nil
	case name == "paper-cnn-mnist":
		return PaperCNNMNISTArch(), nil
	case name == "paper-cnn-cifar":
		return PaperCNNCIFARArch(), nil
	case name == "faces":
		return FacesArch(), nil
	case strings.HasPrefix(name, "mlp:"):
		h, err := strconv.Atoi(name[len("mlp:"):])
		if err != nil || h <= 0 {
			return Arch{}, fmt.Errorf("mdgan: bad MLP width in %q (want e.g. mlp:128)", name)
		}
		return MLPArch(h), nil
	case strings.HasPrefix(name, "cnn:"):
		parts := strings.Split(name[len("cnn:"):], "x")
		if len(parts) == 3 {
			c, err1 := strconv.Atoi(parts[0])
			size, err2 := strconv.Atoi(parts[1])
			classes, err3 := strconv.Atoi(parts[2])
			if err1 == nil && err2 == nil && err3 == nil && c > 0 && size > 0 && classes >= 0 {
				return CNNArch(c, size, classes), nil
			}
		}
		return Arch{}, fmt.Errorf("mdgan: bad CNN spec %q (want cnn:<channels>x<size>x<classes>, e.g. cnn:3x32x10)", name)
	default:
		return Arch{}, fmt.Errorf("mdgan: unknown architecture %q (ring, mlp:<h>, paper-mlp, paper-cnn-mnist, paper-cnn-cifar, faces, cnn:<c>x<size>x<classes>)", name)
	}
}
