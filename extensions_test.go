package mdgan_test

// Facade-level tests for the §VII extension knobs and the library
// conveniences (checkpointing, rendering, non-IID sharding).

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mdgan"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(g.G, path); err != nil {
		t.Fatal(err)
	}
	other := mdgan.MLPArch(32).NewGAN(2, 0, 1)
	if err := mdgan.LoadGenerator(other.G, path); err != nil {
		t.Fatal(err)
	}
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	a, _ := g.G.Generate(4, rng1, false)
	b, _ := other.G.Generate(4, rng2, false)
	if !a.Equal(b, 0) {
		t.Fatal("checkpoint round trip must be bit-exact")
	}
}

func TestCheckpointRejectsWrongArch(t *testing.T) {
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(g.G, path); err != nil {
		t.Fatal(err)
	}
	other := mdgan.MLPArch(64).NewGAN(2, 0, 1)
	if err := mdgan.LoadGenerator(other.G, path); err == nil {
		t.Fatal("loading into a differently-shaped generator must fail")
	}
}

func TestSaveSampleGrid(t *testing.T) {
	ds := mdgan.SynthDigits(8, 1)
	path := filepath.Join(t.TempDir(), "grid.png")
	if err := mdgan.SaveSampleGrid(path, ds.X, 4); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("grid file missing or empty: %v", err)
	}
}

func TestRunWithCompression(t *testing.T) {
	ds := mdgan.GaussianRing(400, 8, 2.0, 0.05, 1)
	base := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 3, Batch: 16, Iters: 15, Seed: 2,
	}
	plain, err := mdgan.Run(ds, mdgan.RingArch(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Compress = mdgan.CompressTopK
	sparse, err := mdgan.Run(ds, mdgan.RingArch(), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Traffic.Total() >= plain.Traffic.Total() {
		t.Fatalf("top-k run traffic %d not below plain %d",
			sparse.Traffic.Total(), plain.Traffic.Total())
	}
}

func TestRunWithByzantineAndMedian(t *testing.T) {
	ds := mdgan.GaussianRing(400, 8, 2.0, 0.05, 3)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 5, Batch: 16, Iters: 15, Seed: 4, K: 1,
		Byzantine: map[int]mdgan.ByzantineMode{1: mdgan.ByzantineScale},
		Aggregate: mdgan.AggMedian,
	}
	res, err := mdgan.Run(ds, mdgan.RingArch(), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 15 {
		t.Fatalf("iters = %d", res.Iters)
	}
}

func TestRunWithNonIIDSkew(t *testing.T) {
	ds := mdgan.SynthDigits(600, 5)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 5, Batch: 10, Iters: 10, Seed: 6,
		NonIIDSkew: 1,
	}
	if _, err := mdgan.Run(ds, mdgan.MLPArch(32), o, nil); err != nil {
		t.Fatal(err)
	}
	// The sharding itself must produce the requested skew.
	shards := mdgan.SplitNonIID(ds, 5, 1, 7)
	for _, sh := range shards {
		if mdgan.LabelSkew(sh, ds) < 0.4 {
			t.Fatalf("full-skew shard has skew %v", mdgan.LabelSkew(sh, ds))
		}
	}
}

func TestRunWithActivePerRound(t *testing.T) {
	ds := mdgan.GaussianRing(400, 8, 2.0, 0.05, 8)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 6, Batch: 16, Iters: 12, Seed: 9,
		ActivePerRound: 2, K: 1,
	}
	res, err := mdgan.Run(ds, mdgan.RingArch(), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 6, Batch: 16, Iters: 12, Seed: 9, K: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.Total() >= full.Traffic.Total() {
		t.Fatal("client sampling must reduce total traffic")
	}
}

func TestRunWithWorkerJoin(t *testing.T) {
	ds := mdgan.GaussianRing(400, 8, 2.0, 0.05, 10)
	spare := mdgan.GaussianRing(200, 8, 2.0, 0.05, 11)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 2, Batch: 16, Iters: 20, Seed: 12, K: 1,
		JoinAt: map[int][]*mdgan.Dataset{10: {spare}},
	}
	res, err := mdgan.Run(ds, mdgan.RingArch(), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3 {
		t.Fatalf("live = %v, want 3 after join", res.Live)
	}
}
