package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

// runBenchDiff compares two -benchjson reports row by row and prints
// the perf-trajectory deltas: ns/op (and GFLOP/s or bytes/op where the
// row carries them), with regressions beyond regressionPct flagged.
// The diff is advisory — rows present on only one side are counted,
// not errors, and the exit code never signals a regression (perf on
// shared hosts is noisy; verify.sh runs this as a non-gating step).
func runBenchDiff(newPath, basePath string) {
	newRep, baseRep := loadReport(newPath), loadReport(basePath)
	base := make(map[string]benchRow, len(baseRep.Benchmarks))
	for _, r := range baseRep.Benchmarks {
		base[r.Dtype+"\x00"+r.Name] = r
	}
	seen := make(map[string]bool, len(newRep.Benchmarks))

	const regressionPct = 10.0
	compared, regressions, onlyNew := 0, 0, 0
	fmt.Printf("benchdiff: %s -> %s\n", basePath, newPath)
	for _, nr := range newRep.Benchmarks {
		key := nr.Dtype + "\x00" + nr.Name
		seen[key] = true
		br, ok := base[key]
		if !ok {
			onlyNew++
			continue
		}
		line, worst := diffRow(br, nr)
		if line == "" {
			continue // no comparable metric on this row pair
		}
		compared++
		mark := "  "
		if worst > regressionPct {
			mark = "!! "
			regressions++
		}
		fmt.Printf("%s%s [%s]: %s\n", mark, nr.Name, nr.Dtype, line)
	}
	onlyBase := 0
	for key := range base {
		if !seen[key] {
			onlyBase++
		}
	}
	fmt.Printf("benchdiff: %d rows compared, %d regressions (>%.0f%% worse), %d only in %s, %d only in %s\n",
		compared, regressions, regressionPct, onlyNew, newPath, onlyBase, basePath)
}

func loadReport(path string) benchReport {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		log.Fatalf("benchdiff: %s: %v", path, err)
	}
	return rep
}

// diffRow formats the metric deltas of one (baseline, new) row pair and
// returns the worst regression among them in percent (positive = new is
// worse). An empty line means the pair shares no comparable metric.
func diffRow(br, nr benchRow) (string, float64) {
	line, worst := "", 0.0
	add := func(s string, regress float64) {
		if line != "" {
			line += ", "
		}
		line += s
		if regress > worst {
			worst = regress
		}
	}
	pct := func(old, new float64) float64 { return (new - old) / old * 100 }
	if br.NsPerOp > 0 && nr.NsPerOp > 0 {
		d := pct(br.NsPerOp, nr.NsPerOp)
		add(fmt.Sprintf("%.3g -> %.3g ns/op (%+.1f%%)", br.NsPerOp, nr.NsPerOp, d), d)
	}
	if br.GFlops > 0 && nr.GFlops > 0 {
		d := pct(br.GFlops, nr.GFlops)
		// Higher is better: a GFLOP/s drop is the regression.
		add(fmt.Sprintf("%.2f -> %.2f GFLOP/s (%+.1f%%)", br.GFlops, nr.GFlops, d), -d)
	}
	if br.NsPerOp == 0 && br.BytesPerOp > 0 && nr.BytesPerOp > 0 {
		d := pct(float64(br.BytesPerOp), float64(nr.BytesPerOp))
		add(fmt.Sprintf("%d -> %d B/op (%+.1f%%)", br.BytesPerOp, nr.BytesPerOp, d), d)
	}
	if br.ScoreDefenseOn > 0 && nr.ScoreDefenseOn > 0 {
		d := pct(br.ScoreDefenseOn, nr.ScoreDefenseOn)
		// Higher is better: a defended-score drop is the regression.
		add(fmt.Sprintf("%.3f -> %.3f defended score (%+.1f%%)", br.ScoreDefenseOn, nr.ScoreDefenseOn, d), -d)
	}
	return line, worst
}
