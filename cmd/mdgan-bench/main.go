// Command mdgan-bench regenerates every table and figure of the
// paper's evaluation section (the per-experiment index is DESIGN.md §4)
// and writes the series to stdout and, optionally, CSV files.
//
//	mdgan-bench                       # quick scale, all experiments
//	mdgan-bench -only fig3            # one experiment
//	mdgan-bench -scale full           # paper-closer scale (hours on CPU)
//	mdgan-bench -csv results/         # also write CSV series
//	mdgan-bench -benchjson BENCH.json # perf-trajectory micro-benchmarks
//	mdgan-bench -list-kernels         # GEMM kernel tiers this host can run
//	mdgan-bench -benchdiff NEW.json -baseline OLD.json
//	                                  # advisory diff of two -benchjson files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mdgan"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// benchRow is one entry of the -benchjson report.
type benchRow struct {
	Name string `json:"name"`
	// Dtype records the compiled tensor element type the row was
	// measured under ("float64" or "float32"); rows of both dtypes
	// coexist in one report (verify.sh runs the default and the
	// -tags f32 builds back to back into the same file).
	Dtype       string  `json:"dtype"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// WorkerStepsPerSec is the aggregate per-worker iteration rate of
	// the cluster-size sweep rows (K workers each completing 1/ns_per_op
	// global iterations per second): the headline number for how worker-
	// and kernel-level parallelism compose.
	WorkerStepsPerSec float64 `json:"worker_steps_per_sec,omitempty"`
	// Topology tags the cluster-size sweep rows measured under a
	// non-flat aggregation overlay; SpeedupVsFlat is that row's
	// flat-ns/tree-ns ratio at the same K (> 1 means the tree won).
	Topology      string  `json:"topology,omitempty"`
	SpeedupVsFlat float64 `json:"speedup_vs_flat,omitempty"`
	// GFlops, Kernel and Lanes annotate the GEMM micro-benchmark rows:
	// the achieved GFLOP/s at an MD-GAN layer shape, which micro-kernel
	// produced it ("avx512", "avx2+fma", "generic", "generic (noasm)"),
	// and that kernel's SIMD width in elements — the kernel-level
	// evidence behind the iteration-level rows. The bare-named row is
	// measured under the dispatched (best) kernel so the trajectory
	// stays comparable across PRs; rows suffixed /kernel=<name> pin the
	// other tiers the host can force.
	GFlops float64 `json:"gflops,omitempty"`
	Kernel string  `json:"kernel,omitempty"`
	Lanes  int     `json:"lanes,omitempty"`
	// Fault-summary annotations of the chaos row: the fault ledger of a
	// short seeded-chaos run under a round deadline (ns_per_op is its
	// wall time per applied iteration, faults included).
	Timeouts  int   `json:"timeouts,omitempty"`
	Rejoins   int   `json:"rejoins,omitempty"`
	Demotions int   `json:"demotions,omitempty"`
	Reparents int   `json:"reparents,omitempty"`
	Injected  int64 `json:"injected_faults,omitempty"`
	// Serving-tier annotations (ServeThroughput/ServeLatency rows): the
	// concurrent-load benchmark's aggregate sampling rate, request
	// latency percentiles, and the mean fused-batch size the coalescer
	// achieved under that load.
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	P50Ms         float64 `json:"latency_p50_ms,omitempty"`
	P99Ms         float64 `json:"latency_p99_ms,omitempty"`
	AvgBatch      float64 `json:"avg_batch,omitempty"`
	// Free-rider summary annotations (FreeRiderSummary/<variant> rows):
	// final classifier scores of a short non-IID run attacked by 2/8
	// free-riders with the defense off and on, the attack-free baseline
	// score of the same configuration, and the defense's demotion split
	// (free-riders vs honest workers removed). ns_per_op is the
	// defense-on run's wall cost per iteration, scoring included.
	ScoreBaseline     float64 `json:"score_baseline,omitempty"`
	ScoreDefenseOff   float64 `json:"score_defense_off,omitempty"`
	ScoreDefenseOn    float64 `json:"score_defense_on,omitempty"`
	FreeRidersDemoted int     `json:"free_riders_demoted,omitempty"`
	HonestDemoted     int     `json:"honest_demoted,omitempty"`
}

// workerSweep aliases the canonical cluster-size axis shared with the
// go-test benchmarks, so the JSON row names cannot drift from them.
var workerSweep = mdgan.WorkerSweep

// benchReport is the schema of BENCH_<n>.json: the per-PR performance
// trajectory of the training hot path.
type benchReport struct {
	Date       string     `json:"date"`
	GoVersion  string     `json:"go_version"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Benchmarks []benchRow `json:"benchmarks"`
}

// writeBenchJSON runs the hot-path micro-benchmarks in-process (the
// same bodies as the go-test benchmarks of the repo root) and records
// ns/op and allocs/op. topoSpec/fanin select the aggregation overlay of
// the topology-tagged cluster-size rows ("flat" suppresses them).
func writeBenchJSON(path, topoSpec string, fanin int) {
	run := func(name string, fn func(b *testing.B)) benchRow {
		r := testing.Benchmark(fn)
		log.Printf("%s [%s]: %v ns/op, %d B/op, %d allocs/op", name, tensor.DTypeName, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
		return benchRow{
			Name:        name,
			Dtype:       tensor.DTypeName,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	// The strict/pipelined pair shares one configuration (K=8 workers)
	// so the two rows isolate the engine driver: on a single core the
	// pipelined row measures pure reordering overhead (parity is the
	// bar — the overlap win needs cores for the workers to actually
	// compute while the server generates).
	iterBench := func(pipeline bool) func(b *testing.B) {
		return func(b *testing.B) {
			train := mdgan.SynthDigits(800, 1)
			o := mdgan.Options{
				Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10, Iters: b.N, Seed: 2, K: 2,
				Pipeline: pipeline,
			}
			b.ResetTimer()
			if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	rows := []benchRow{
		run("BenchmarkMDGANIteration", iterBench(false)),
		run("BenchmarkMDGANIteration/pipelined", iterBench(true)),
		run("BenchmarkGeneratorForward", func(b *testing.B) {
			g := mdgan.MLPArch(128).NewGAN(1, 0, 1)
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.G.Generate(32, rng, true)
			}
		}),
		run("BenchmarkTableII", func(b *testing.B) {
			p := mdgan.PaperMNISTComplexity()
			p.B, p.I = 10, 50000
			var t mdgan.TableII
			for i := 0; i < b.N; i++ {
				t = mdgan.ComputeTableII(p)
			}
			_ = t
		}),
	}
	// Cluster-size sweep (the Fig. 2-style axis): one synchronous global
	// iteration at K simulated workers, all driving their kernels
	// through the work-stealing scheduler concurrently. Row names match
	// the go-test sub-benchmarks (BenchmarkMDGANIterationK/K=…), which
	// share this body and mdgan.WorkerSweep. Each K is measured under
	// the flat star AND under the -topology overlay (default tree:2),
	// tree rows carrying the flat-vs-tree speedup at the same K.
	iterKBench := func(k int, topoSpec string) func(b *testing.B) {
		return func(b *testing.B) {
			train := mdgan.SynthDigits(1600, 1)
			o := mdgan.Options{
				Algorithm: mdgan.MDGAN, Workers: k, Batch: 10, Iters: b.N, Seed: 2,
				Topology: topoSpec, Fanin: fanin,
			}
			b.ResetTimer()
			if _, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	var lastFlat, lastTree benchRow
	for _, k := range workerSweep {
		flat := run(fmt.Sprintf("BenchmarkMDGANIterationK/K=%d", k), iterKBench(k, ""))
		flat.WorkerStepsPerSec = float64(k) * 1e9 / flat.NsPerOp
		rows = append(rows, flat)
		lastFlat = flat
		if topoSpec == "" || topoSpec == "flat" {
			continue
		}
		tree := run(fmt.Sprintf("BenchmarkMDGANIterationK/K=%d/topology=%s", k, topoSpec),
			iterKBench(k, topoSpec))
		tree.WorkerStepsPerSec = float64(k) * 1e9 / tree.NsPerOp
		tree.Topology = topoSpec
		tree.SpeedupVsFlat = flat.NsPerOp / tree.NsPerOp
		rows = append(rows, tree)
		lastTree = tree
	}
	// The headline comparison row: flat vs the overlay at the sweep's
	// largest K, where the server-ingress bound matters most.
	if lastTree.Name != "" {
		maxK := workerSweep[len(workerSweep)-1]
		log.Printf("TopologyFlatVsTree/K=%d [%s]: flat %.0f ns/op vs %s %.0f ns/op (speedup %.2fx)",
			maxK, tensor.DTypeName, lastFlat.NsPerOp, topoSpec, lastTree.NsPerOp, lastFlat.NsPerOp/lastTree.NsPerOp)
		rows = append(rows, benchRow{
			Name:          fmt.Sprintf("TopologyFlatVsTree/K=%d", maxK),
			Dtype:         tensor.DTypeName,
			Iters:         lastTree.Iters,
			NsPerOp:       lastTree.NsPerOp,
			Topology:      topoSpec,
			SpeedupVsFlat: lastFlat.NsPerOp / lastTree.NsPerOp,
		})
	}
	// GEMM micro-benchmarks at MD-GAN layer shapes (names match the
	// go-test sub-benchmarks in internal/tensor): the kernel-level
	// GFLOP/s behind the iteration rows. Each shape runs once per
	// forcible kernel tier — the row under the dispatched (best) kernel
	// keeps the bare name so the trajectory stays comparable across
	// PRs, the others carry a /kernel=<name> suffix.
	gemmShapes := [][3]int{
		{64, 800, 6272}, // conv2 forward: (OutC, C·KH·KW)·(ckk, N·oHW)
		{32, 128, 784},  // MLP generator output layer at batch 32
		{512, 512, 512}, // square reference point
	}
	dispatched := tensor.GemmKernel()
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		rng := rand.New(rand.NewSource(2))
		mk := func(r, c int) *tensor.Tensor {
			t := tensor.New(r, c)
			for i := range t.Data {
				t.Data[i] = tensor.Elem(rng.NormFloat64())
			}
			return t
		}
		x, y, out := mk(m, k), mk(k, n), tensor.New(m, n)
		for _, force := range tensor.GemmKernels() {
			if !tensor.ForceGemmKernel(force) {
				continue
			}
			name := fmt.Sprintf("BenchmarkGEMM/%dx%dx%d", m, k, n)
			if tensor.GemmKernel() != dispatched {
				name += "/kernel=" + force
			}
			row := run(name, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.MatMulInto(out, x, y)
				}
			})
			row.GFlops = 2 * float64(m) * float64(k) * float64(n) / row.NsPerOp
			row.Kernel = tensor.GemmKernel()
			row.Lanes = tensor.GemmLanes()
			log.Printf("%s [%s]: %.2f GFLOP/s (%s kernel, %d lanes)", row.Name, tensor.DTypeName, row.GFlops, row.Kernel, row.Lanes)
			rows = append(rows, row)
		}
	}
	// Restore the dispatched kernel for the remaining benchmark rows.
	for _, force := range tensor.GemmKernels() {
		if tensor.ForceGemmKernel(force) && tensor.GemmKernel() == dispatched {
			break
		}
	}
	// Table III W→W traffic delta of the FP32-swap default: one short
	// swap-heavy run per precision, recorded as bytes per swap message
	// (the measured |θ| payload — fp32 is ~half of native on the
	// float64 build, identical under -tags f32).
	for _, prec := range []struct {
		name string
		p    mdgan.SwapPrecision
	}{{"fp32", mdgan.SwapFP32}, {"native", mdgan.SwapNative}} {
		train := mdgan.SynthDigits(320, 1)
		o := mdgan.Options{
			Algorithm: mdgan.MDGAN, Workers: 4, Batch: 10, Iters: 8,
			Seed: 2, K: 2, SwapEvery: 1, SwapPrec: prec.p,
		}
		res, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil)
		if err != nil {
			log.Fatal(err)
		}
		msgs := res.Traffic.Msgs[simnet.WtoW]
		if msgs == 0 {
			log.Fatal("swap-traffic probe produced no W→W messages")
		}
		log.Printf("SwapTrafficPerMessage/%s [%s]: %d bytes over %d swaps",
			prec.name, tensor.DTypeName, res.Traffic.Bytes[simnet.WtoW]/msgs, msgs)
		rows = append(rows, benchRow{
			Name:       "SwapTrafficPerMessage/" + prec.name,
			Dtype:      tensor.DTypeName,
			Iters:      int(msgs),
			BytesPerOp: res.Traffic.Bytes[simnet.WtoW] / msgs,
		})
	}
	// Fault summary: a short seeded-chaos run under a round deadline,
	// on a depth-2 aggregation tree so the mid-tree fault paths
	// (aggregator suspected → leaves reparented) are part of what the
	// row survives. It records the wall cost per applied iteration with
	// the suspect/rejoin machinery active (drops cost one RoundTimeout
	// each) and the fault ledger — the robustness counterpart of the
	// fault-free iteration rows above.
	{
		train := mdgan.SynthDigits(640, 1)
		o := mdgan.Options{
			Algorithm: mdgan.MDGAN, Workers: 9, Batch: 10, Iters: 60, Seed: 2, K: 2,
			Topology:     "tree:2",
			RoundTimeout: 150 * time.Millisecond, SuspectAfter: 8,
			Chaos: &mdgan.ChaosConfig{
				Seed: 7, Drop: 0.004, Delay: 0.02, MaxDelay: 2 * time.Millisecond,
				Duplicate:    0.01,
				ProtectTypes: map[string]bool{"stop": true, "swap": true},
			},
		}
		start := time.Now()
		res, err := mdgan.Run(train, mdgan.MLPArch(48), o, nil)
		if err != nil {
			log.Fatal(err)
		}
		injected := res.Chaos.Dropped + res.Chaos.Corrupted + res.Chaos.Delayed + res.Chaos.Duplicated
		log.Printf("FaultChaosSummary [%s]: %d iters, timeouts=%d rejoins=%d demotions=%d reparents=%d injected=%d",
			tensor.DTypeName, res.Iters, res.Faults.Timeouts, res.Faults.Rejoins, res.Faults.Demotions, res.Faults.Reparents, injected)
		rows = append(rows, benchRow{
			Name:      "FaultChaosSummary",
			Dtype:     tensor.DTypeName,
			Iters:     res.Iters,
			NsPerOp:   float64(time.Since(start).Nanoseconds()) / float64(res.Iters),
			Topology:  "tree:2",
			Timeouts:  res.Faults.Timeouts,
			Rejoins:   res.Faults.Rejoins,
			Demotions: res.Faults.Demotions,
			Reparents: res.Faults.Reparents,
			Injected:  injected,
		})
	}
	rows = append(rows, freeRiderBenchRows()...)
	rows = append(rows, serveBenchRows()...)
	// Merge with an existing report so the two dtype builds accumulate
	// into one file: rows measured under the other dtype are kept, rows
	// of this dtype are replaced.
	if prev, err := os.ReadFile(path); err == nil {
		var old benchReport
		if err := json.Unmarshal(prev, &old); err == nil {
			var kept []benchRow
			for _, r := range old.Benchmarks {
				if r.Dtype != tensor.DTypeName && r.Dtype != "" {
					kept = append(kept, r)
				}
			}
			rows = append(kept, rows...)
		}
	}
	report := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: rows,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%s rows)", path, tensor.DTypeName)
}

// freeRiderBenchRows measures the free-rider arms race end to end: for
// each attack variant, a short non-IID digit run with 2/8 workers
// free-riding, once with the defense off and once with it on, against
// one shared attack-free baseline. The rows record the final
// classifier scores of all three runs and the defense's demotion split
// — the defended score should sit measurably closer to the baseline
// than the undefended one, with only free-riders removed.
func freeRiderBenchRows() []benchRow {
	train := mdgan.SynthDigits(640, 1)
	test := mdgan.SynthDigits(800, 2)
	scorer := mdgan.TrainScorer(test, 3)
	ev := mdgan.NewEvaluator(scorer, test, 500)
	const iters = 60
	run := func(fr map[int]mdgan.ByzantineMode, defense bool) *mdgan.RunResult {
		o := mdgan.Options{
			Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10, Iters: iters,
			Seed: 2, K: 2, NonIIDSkew: 0.8, EvalEvery: iters,
			FreeRiders: fr, Defense: defense,
		}
		res, err := mdgan.Run(train, mdgan.MLPArch(48), o, ev)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	baseScore, _ := run(nil, false).Curve.Last()
	var rows []benchRow
	for _, v := range []struct {
		name string
		mode mdgan.ByzantineMode
	}{
		{"random", mdgan.FreeRiderRandom},
		{"replay", mdgan.FreeRiderReplay},
		{"noise", mdgan.FreeRiderScaledNoise},
	} {
		fr := map[int]mdgan.ByzantineMode{2: v.mode, 5: v.mode}
		offScore, _ := run(fr, false).Curve.Last()
		start := time.Now()
		on := run(fr, true)
		elapsed := time.Since(start)
		onScore, _ := on.Curve.Last()
		honest := on.Faults.Demotions - on.Faults.FreeRidersDemoted
		log.Printf("FreeRiderSummary/%s [%s]: score base=%.3f off=%.3f on=%.3f, demoted freeriders=%d honest=%d",
			v.name, tensor.DTypeName, baseScore, offScore, onScore, on.Faults.FreeRidersDemoted, honest)
		rows = append(rows, benchRow{
			Name:              "FreeRiderSummary/" + v.name,
			Dtype:             tensor.DTypeName,
			Iters:             on.Iters,
			NsPerOp:           float64(elapsed.Nanoseconds()) / float64(on.Iters),
			ScoreBaseline:     baseScore,
			ScoreDefenseOff:   offScore,
			ScoreDefenseOn:    onScore,
			FreeRidersDemoted: on.Faults.FreeRidersDemoted,
			HonestDemoted:     honest,
		})
	}
	return rows
}

// runRobustness is the -free-riders/-defense/-lifetimes one-off: a
// short scored non-IID digit run under the given attack, defense and
// retirement schedule, its final classifier score and fault ledger
// printed — the CLI-driveable version of the FreeRiderSummary rows.
func runRobustness(frSpec string, defense bool, ltSpec string, workers int) {
	fr, err := mdgan.ParseFreeRiders(frSpec)
	if err != nil {
		log.Fatal(err)
	}
	lts, err := mdgan.ParseLifetimes(ltSpec)
	if err != nil {
		log.Fatal(err)
	}
	if workers == 0 {
		workers = 8
	}
	train := mdgan.SynthDigits(640, 1)
	test := mdgan.SynthDigits(800, 2)
	log.Printf("robustness run: N=%d free-riders=%d defense=%v lifetimes=%d", workers, len(fr), defense, len(lts))
	scorer := mdgan.TrainScorer(test, 3)
	ev := mdgan.NewEvaluator(scorer, test, 500)
	const iters = 60
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: workers, Batch: 10, Iters: iters,
		Seed: 2, K: 2, NonIIDSkew: 0.8, EvalEvery: iters,
		FreeRiders: fr, Defense: defense, Lifetimes: lts,
	}
	res, err := mdgan.Run(train, mdgan.MLPArch(48), o, ev)
	if err != nil {
		log.Fatal(err)
	}
	score, fid := res.Curve.Last()
	fmt.Printf("iters=%d score=%.3f fid=%.2f surviving=%d\n", res.Iters, score, fid, len(res.Live))
	if res.Faults.Any() || res.Faults.Retirements > 0 {
		fmt.Print(res.Faults.String())
	}
}

// serveBenchRows runs the serving-tier concurrent-load benchmark:
// closed-loop clients hammering an in-process SampleServer (checkpoint
// on disk, loaded through the real facade), measuring aggregate
// samples/sec and per-request latency percentiles. Closed-loop clients
// are the coalescer's worst case — each offers a new request only after
// its previous response lands — so the achieved avg_batch is a lower
// bound on what open-loop traffic would fuse.
func serveBenchRows() []benchRow {
	dir, err := os.MkdirTemp("", "mdgan-serve-bench-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "g.ckpt")
	if err := mdgan.SaveGenerator(mdgan.MLPArch(128).NewGAN(2, 0, 1).G, ckpt); err != nil {
		log.Fatal(err)
	}
	s, err := mdgan.NewSampleServer(mdgan.ServeOptions{
		Arch: mdgan.MLPArch(128), Checkpoint: ckpt,
		MaxBatch: 64, MaxWait: 500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	const (
		clients   = 32
		perClient = 48
		perReq    = 4 // samples per request
	)
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				x, _, err := s.Sample(perReq, nil)
				if err != nil {
					log.Fatal(err)
				}
				s.Release(x)
				lats[c] = append(lats[c], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := all[len(all)/2]
	p99 := all[len(all)*99/100]
	st := s.Status()
	samplesPerSec := float64(st.Samples) / wall.Seconds()
	log.Printf("ServeThroughput [%s]: %.0f samples/s over %d requests (%d clients, avg batch %.1f)",
		tensor.DTypeName, samplesPerSec, st.Requests, clients, st.AvgBatch)
	log.Printf("ServeLatency [%s]: p50 %v, p99 %v", tensor.DTypeName, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	return []benchRow{
		{
			Name: "ServeThroughput", Dtype: tensor.DTypeName,
			Iters:         int(st.Requests),
			NsPerOp:       float64(wall.Nanoseconds()) / float64(st.Samples),
			SamplesPerSec: samplesPerSec,
			AvgBatch:      st.AvgBatch,
		},
		{
			Name: "ServeLatency", Dtype: tensor.DTypeName,
			Iters:   len(all),
			NsPerOp: float64(p50.Nanoseconds()),
			P50Ms:   float64(p50.Nanoseconds()) / 1e6,
			P99Ms:   float64(p99.Nanoseconds()) / 1e6,
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdgan-bench: ")
	var (
		only      = flag.String("only", "", "run one experiment: table2|table3|table4|fig2|fig3|fig4|fig5|fig6")
		scale     = flag.String("scale", "quick", "experiment scale: quick | full")
		workers   = flag.Int("workers", 0, "override the simulated cluster size for the training-backed experiments (0 = scale default)")
		csvDir    = flag.String("csv", "", "directory to write CSV series into")
		benchJSON = flag.String("benchjson", "", "write hot-path micro-benchmark results to this JSON file and exit")
		dtype     = flag.String("dtype", "", "assert the compiled tensor element type (float64 | float32); the dtype is a build-time property, so a mismatch is fatal with a rebuild hint")
		pipeline  = flag.Bool("pipeline", false, "run the MD-GAN competitors of the training-backed experiments through the pipelined engine (one-iteration parameter staleness) instead of strict Algorithm 1")
		topology  = flag.String("topology", "tree:2", "aggregation overlay of the topology-tagged -benchjson rows: tree:<depth> | flat (flat suppresses them)")
		fanin     = flag.Int("fanin", 0, "tree per-node child bound for -topology (0 = auto)")
		listKerns = flag.Bool("list-kernels", false, "print the GEMM kernel tiers this host can force (one per line, see MDGAN_GEMM_KERNEL) and exit")
		benchDiff = flag.String("benchdiff", "", "diff this -benchjson report against -baseline and exit (advisory: regressions are flagged in the output, not the exit code)")
		baseline  = flag.String("baseline", "", "baseline -benchjson report for -benchdiff")
		freeRider = flag.String("free-riders", "", "robustness one-off: free-riding workers as N[:variant] or i=variant,... (variant random | replay | noise); runs a short scored non-IID digit run and exits")
		defense   = flag.Bool("defense", false, "enable the feedback-quality defense in the robustness one-off")
		lifetimes = flag.String("lifetimes", "", "robustness one-off: retirement windows i=join:retire,... (join must be 0 without a join schedule)")
	)
	flag.Parse()

	if *listKerns {
		for _, k := range tensor.GemmKernels() {
			fmt.Println(k)
		}
		return
	}
	if *benchDiff != "" {
		if *baseline == "" {
			log.Fatal("-benchdiff needs -baseline")
		}
		runBenchDiff(*benchDiff, *baseline)
		return
	}

	if *dtype != "" && *dtype != tensor.DTypeName {
		hint, example := "-tags f32", "go run -tags f32 ./cmd/mdgan-bench …"
		if *dtype == "float64" {
			hint, example = "no build tags", "go run ./cmd/mdgan-bench …"
		}
		log.Fatalf("this binary computes in %s; for -dtype %s rebuild with %s (e.g. `%s`)",
			tensor.DTypeName, *dtype, hint, example)
	}

	if *benchJSON != "" {
		writeBenchJSON(*benchJSON, *topology, *fanin)
		return
	}

	if *freeRider != "" || *defense || *lifetimes != "" {
		runRobustness(*freeRider, *defense, *lifetimes, *workers)
		return
	}

	sc := mdgan.QuickScale
	if *scale == "full" {
		sc = mdgan.FullScale
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	sc.Pipeline = *pipeline
	want := func(name string) bool { return *only == "" || *only == name }
	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}

	if want("table2") {
		mnist, cifar := mdgan.PaperMNISTComplexity(), mdgan.PaperCIFARComplexity()
		mnist.B, mnist.I = 10, 50000
		cifar.B, cifar.I = 10, 50000
		fmt.Print(mdgan.FormatTableII("MNIST MLP (paper counts)", mnist))
		fmt.Print(mdgan.FormatTableII("CIFAR10 CNN (paper counts)", cifar))
	}
	if want("table3") {
		fmt.Print(mdgan.TableIIIFormulas())
	}
	if want("table4") {
		fmt.Print(mdgan.FormatTableIV(mdgan.ComputeTableIV(mdgan.PaperCIFARComplexity(), []int{10, 100})))
	}
	if want("fig2") {
		batches := []int{1, 10, 100, 1000, 10000}
		for name, p := range map[string]mdgan.ComplexityParams{
			"mnist": mdgan.PaperMNISTComplexity(),
			"cifar": mdgan.PaperCIFARComplexity(),
		} {
			if *workers > 0 {
				p.N = *workers
			}
			fmt.Print(mdgan.FormatFig2(name, p, mdgan.ComputeFig2(p, batches)))
		}
	}
	if want("fig3") {
		for _, panel := range []mdgan.Fig3Panel{mdgan.Fig3MNISTMLP, mdgan.Fig3MNISTCNN, mdgan.Fig3CIFARCNN} {
			start := time.Now()
			curves, err := mdgan.RunFig3(panel, sc)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Figure 3 panel %s (%v)", panel, time.Since(start).Round(time.Second))
			fmt.Print(mdgan.FormatCurves(title, curves))
			writeCSV("fig3-"+strings.ReplaceAll(string(panel), "/", "-"), mdgan.FormatCurvesCSV(curves))
		}
	}
	if want("fig4") {
		// Figure 4 trains to convergence at every point, so quick scale
		// caps the axis at 50 workers; -scale full runs the whole sweep
		// (the 100–500 tail is otherwise covered by the per-iteration
		// BenchmarkMDGANIterationK rows).
		ns := workerSweep
		if *scale != "full" {
			var capped []int
			for _, n := range ns {
				if n <= 50 {
					capped = append(capped, n)
				}
			}
			if len(capped) < len(ns) {
				log.Printf("fig4: quick scale caps the worker axis at 50 (dropped %v); use -scale full for the whole sweep", ns[len(capped):])
			}
			ns = capped
		}
		rows, err := mdgan.RunFig4(ns, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mdgan.FormatFig4(rows))
	}
	if want("fig5") {
		curves, err := mdgan.RunFig5(mdgan.Fig3MNISTMLP, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mdgan.FormatCurves("Figure 5: fault tolerance (MNIST MLP)", curves))
		writeCSV("fig5", mdgan.FormatCurvesCSV(curves))
	}
	if want("fig6") {
		curves, err := mdgan.RunFig6(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mdgan.FormatCurves("Figure 6: faces (CelebA stand-in)", curves))
		writeCSV("fig6", mdgan.FormatCurvesCSV(curves))
	}
}
