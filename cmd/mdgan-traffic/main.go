// Command mdgan-traffic prints the paper's communication artefacts:
// Table II (computation/memory complexity), Table III (symbolic
// communication complexities), Table IV (instantiated costs for the
// CIFAR10 deployment) and the Figure 2 ingress-traffic sweep, for both
// the paper's published parameter counts and the counts of the
// architectures implemented in this repository.
package main

import (
	"flag"
	"fmt"

	"mdgan"
)

func main() {
	var (
		workers = flag.Int("workers", 10, "number of workers N")
		iters   = flag.Int("iters", 50000, "iterations I")
		ourArch = flag.Bool("our-arch", false, "use this repo's architecture parameter counts instead of the paper's published ones")
	)
	flag.Parse()

	mnist := mdgan.PaperMNISTComplexity()
	cifar := mdgan.PaperCIFARComplexity()
	mnist.N, cifar.N = *workers, *workers
	mnist.I, cifar.I = *iters, *iters
	mnist.B, cifar.B = 10, 10

	if *ourArch {
		w, th := mdgan.ArchParams(mdgan.PaperMLPArch(), 1)
		mnist.W, mnist.Theta = w, th
		w, th = mdgan.ArchParams(mdgan.PaperCNNCIFARArch(), 1)
		cifar.W, cifar.Theta = w, th
		fmt.Println("(using this repository's architecture parameter counts)")
	}

	fmt.Print(mdgan.FormatTableII("MNIST MLP", mnist))
	fmt.Println()
	fmt.Print(mdgan.FormatTableII("CIFAR10 CNN", cifar))
	fmt.Println()
	fmt.Print(mdgan.TableIIIFormulas())
	fmt.Println()
	fmt.Print(mdgan.FormatTableIV(mdgan.ComputeTableIV(cifar, []int{10, 100})))
	fmt.Println()
	batches := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	fmt.Print(mdgan.FormatFig2("MNIST", mnist, mdgan.ComputeFig2(mnist, batches)))
	fmt.Println()
	fmt.Print(mdgan.FormatFig2("CIFAR10", cifar, mdgan.ComputeFig2(cifar, batches)))
}
