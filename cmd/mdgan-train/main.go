// Command mdgan-train trains a GAN with one of the paper's three
// algorithms (standalone, fl-gan, md-gan) on a synthetic dataset and
// prints the metric curve as CSV plus a traffic summary.
//
// Examples:
//
//	mdgan-train -algo md-gan -dataset digits -workers 10 -iters 2000
//	mdgan-train -algo fl-gan -dataset cifar -batch 50
//	mdgan-train -algo md-gan -dataset ring -workers 4 -tcp
//	mdgan-train -algo md-gan -dataset digits -pipeline
//	mdgan-train -algo md-gan -dataset ring -chaos 0.01 -round-timeout 200ms
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mdgan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdgan-train: ")

	var (
		algo       = flag.String("algo", "md-gan", "algorithm: standalone | fl-gan | md-gan")
		ds         = flag.String("dataset", "digits", "dataset: digits | cifar | faces | ring")
		samples    = flag.Int("samples", 4000, "training samples to generate")
		workers    = flag.Int("workers", 10, "number of workers N")
		k          = flag.Int("k", 0, "MD-GAN batches per iteration (0 = ⌊ln N⌋)")
		swapEvery  = flag.Int("swap", 1, "epochs between discriminator swaps (-1 disables)")
		async      = flag.Bool("async", false, "MD-GAN asynchronous mode (§VII.1)")
		pipeline   = flag.Bool("pipeline", false, "MD-GAN pipelined synchronous engine: overlap next-round generation with worker compute (one-iteration parameter staleness)")
		swapNative = flag.Bool("swap-native", false, "ship discriminator swaps at the compiled element width instead of the default 4-byte FP32 wire frames")
		batch      = flag.Int("batch", 10, "batch size b")
		iters      = flag.Int("iters", 1000, "generator iterations I")
		discSteps  = flag.Int("L", 1, "discriminator steps per iteration")
		lrG        = flag.Float64("lrg", 1e-3, "generator Adam learning rate")
		lrD        = flag.Float64("lrd", 4e-3, "discriminator Adam learning rate")
		paperLoss  = flag.Bool("paperloss", false, "use the paper's log(1−D) generator objective")
		seed       = flag.Int64("seed", 1, "random seed")
		evalEvery  = flag.Int("eval", 100, "metric cadence in iterations (0 disables)")
		useTCP     = flag.Bool("tcp", false, "run workers over loopback TCP sockets")
		roundTO    = flag.Duration("round-timeout", 0, "MD-GAN round deadline: suspect missing workers and apply the round with a quorum (0 waits forever)")
		quorum     = flag.Int("quorum", 0, "minimum feedbacks to apply a round after the deadline (0 = 1)")
		suspectN   = flag.Int("suspect-after", 0, "consecutive misses before a suspect is demoted (0 = default, <0 = never)")
		chaos      = flag.Float64("chaos", 0, "fault-injection intensity p in [0,1): drop=p, delay=2p, duplicate=p, corrupt=p/2 on worker→server frames (implies -round-timeout 250ms unless set)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the chaos fault stream")
		skew       = flag.Float64("skew", 0, "non-IID label skew in [0,1] (0 = i.i.d.)")
		compress   = flag.String("compress", "none", "feedback compression: none | fp32 | topk")
		samplesOut = flag.String("samples-out", "", "write a PNG grid of generated samples here")
		ckptOut    = flag.String("ckpt-out", "", "write a generator checkpoint here")
		topology   = flag.String("topology", "", "MD-GAN feedback aggregation overlay: flat (default) | tree:<depth> — tree reduces feedbacks through worker-side aggregators, bounding server ingress by its fan-in")
		fanin      = flag.Int("fanin", 0, "tree topology per-node child bound (0 = auto ceil(N^(1/depth)))")
		swapSched  = flag.String("swap-schedule", "", "discriminator swap plan: ring (default) | shuffle | gossip[:pairs]")
		freeRiders = flag.String("free-riders", "", "free-riding workers: N[:variant] (first N workers) or i=variant,... with variant random | replay | noise")
		defense    = flag.Bool("defense", false, "enable the server-side feedback-quality defense (down-weights, then demotes, free-riders)")
		lifetimes  = flag.String("lifetimes", "", "temporary-discriminator windows: i=join:retire,... (join 0 = from start, retire 0 = never)")
		joinWarmup = flag.Int("join-warmup", 0, "ramp a dynamic joiner's aggregation weight over its first N rounds (0 = full weight at once)")
	)
	flag.Parse()

	train, test, err := buildDataset(*ds, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	arch := mdgan.ArchFor(train)

	var ev *mdgan.Evaluator
	if *evalEvery > 0 && test != nil {
		log.Printf("training metric classifier on %s ...", *ds)
		scorer := mdgan.TrainScorer(test, *seed)
		ev = mdgan.NewEvaluator(scorer, test, 500)
	}

	var comp mdgan.Compression
	switch *compress {
	case "none":
		comp = mdgan.CompressNone
	case "fp32":
		comp = mdgan.CompressFP32
	case "topk":
		comp = mdgan.CompressTopK
	default:
		log.Fatalf("unknown -compress %q", *compress)
	}

	swapPrec := mdgan.SwapFP32
	if *swapNative {
		swapPrec = mdgan.SwapNative
	}
	o := mdgan.Options{
		Algorithm: mdgan.Algorithm(*algo),
		Workers:   *workers, K: *k, SwapEvery: *swapEvery, Async: *async,
		Pipeline: *pipeline,
		Batch:    *batch, Iters: *iters, DiscSteps: *discSteps,
		LRG: *lrG, LRD: *lrD, PaperLoss: *paperLoss,
		Seed: *seed, EvalEvery: *evalEvery, UseTCP: *useTCP,
		NonIIDSkew: *skew, Compress: comp, SwapPrec: swapPrec,
		RoundTimeout: *roundTO, Quorum: *quorum, SuspectAfter: *suspectN,
		Topology: *topology, Fanin: *fanin, SwapSchedule: *swapSched,
		Defense: *defense, JoinWarmup: *joinWarmup,
	}
	if o.FreeRiders, err = mdgan.ParseFreeRiders(*freeRiders); err != nil {
		log.Fatal(err)
	}
	if o.Lifetimes, err = mdgan.ParseLifetimes(*lifetimes); err != nil {
		log.Fatal(err)
	}
	if *chaos > 0 {
		o.Chaos = &mdgan.ChaosConfig{
			Seed:         *chaosSeed,
			Drop:         *chaos,
			Delay:        2 * *chaos,
			MaxDelay:     2 * time.Millisecond,
			Duplicate:    *chaos,
			Corrupt:      *chaos / 2,
			CorruptKinds: map[mdgan.LinkKind]bool{mdgan.LinkWtoC: true},
			ProtectTypes: map[string]bool{"stop": true, "swap": true},
		}
		if o.RoundTimeout == 0 {
			o.RoundTimeout = 250 * time.Millisecond
		}
	}
	log.Printf("running %s on %s (%d samples, arch %s, N=%d, b=%d, I=%d)",
		*algo, *ds, train.Len(), arch.Name, *workers, *batch, *iters)
	res, err := mdgan.Run(train, arch, o, ev)
	if err != nil {
		log.Fatal(err)
	}

	if len(res.Curve.Iters) > 0 {
		fmt.Print(mdgan.FormatCurvesCSV([]mdgan.Curve{res.Curve}))
	}
	if res.Traffic.Total() > 0 {
		fmt.Fprint(os.Stderr, mdgan.FormatTraffic(res.Traffic))
	}
	if len(res.Live) > 0 {
		fmt.Fprintf(os.Stderr, "surviving workers: %v\n", res.Live)
	}
	if res.Faults.Any() || res.Faults.Retirements > 0 {
		fmt.Fprint(os.Stderr, res.Faults.String())
	}
	if c := res.Chaos; c.Dropped+c.Corrupted+c.Delayed+c.Duplicated+c.Partitioned > 0 {
		fmt.Fprintf(os.Stderr, "chaos: dropped=%d corrupted=%d delayed=%d duplicated=%d partitioned=%d\n",
			c.Dropped, c.Corrupted, c.Delayed, c.Duplicated, c.Partitioned)
	}
	if *samplesOut != "" && train.C > 0 {
		rng := rand.New(rand.NewSource(*seed + 99))
		gen, _ := res.G.Generate(64, rng, false)
		if err := mdgan.SaveSampleGrid(*samplesOut, gen, 8); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote sample grid to %s", *samplesOut)
	}
	if *ckptOut != "" {
		if err := mdgan.SaveGenerator(res.G, *ckptOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote generator checkpoint to %s", *ckptOut)
	}
}

func buildDataset(name string, n int, seed int64) (train, test *mdgan.Dataset, err error) {
	switch name {
	case "digits":
		return mdgan.SynthDigits(n, seed), mdgan.SynthDigits(2000, seed+1), nil
	case "cifar":
		return mdgan.SynthCIFAR(n, seed), mdgan.SynthCIFAR(2000, seed+1), nil
	case "faces":
		return mdgan.SynthFaces(n, seed), mdgan.SynthFaces(2000, seed+1), nil
	case "ring":
		return mdgan.GaussianRing(n, 8, 2.0, 0.05, seed), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want digits|cifar|faces|ring)", name)
	}
}
