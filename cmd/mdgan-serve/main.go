// Command mdgan-serve is the generator-serving daemon: it loads a
// generator checkpoint written by mdgan-train (-ckpt-out) and answers
// sampling requests over HTTP, coalescing concurrent requests into
// batched forwards (see internal/serve).
//
//	mdgan-train -algo md-gan -dataset digits -iters 2000 -ckpt-out g.ckpt
//	mdgan-serve -ckpt g.ckpt -arch mlp:128 -addr :8080
//
//	curl -X POST 'localhost:8080/sample?n=16&format=png' > grid.png
//	curl -X POST 'localhost:8080/sample?n=4'              # raw tensor frame
//	curl 'localhost:8080/statusz'                         # counters, latency
//	kill -HUP $(pidof mdgan-serve)                        # hot-reload -ckpt
//
// SIGHUP (or POST /reload) re-reads the checkpoint and swaps it in
// atomically between batches; SIGINT/SIGTERM drain and exit.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdgan"
	"mdgan/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdgan-serve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		ckpt     = flag.String("ckpt", "", "generator checkpoint to serve (required; SIGHUP re-reads it)")
		archName = flag.String("arch", "mlp:128", "generator architecture the checkpoint was trained with: ring | mlp:<h> | paper-mlp | paper-cnn-mnist | paper-cnn-cifar | faces | cnn:<c>x<size>x<classes>")
		maxBatch = flag.Int("max-batch", 64, "max samples fused into one batched forward")
		maxWait  = flag.Duration("max-wait", 2*time.Millisecond, "batch-window length: how long a request waits for co-travellers")
		replicas = flag.Int("replicas", 1, "independent generator replicas (multi-core hosts)")
		seed     = flag.Int64("seed", 1, "latent-stream seed")
		uncond   = flag.Bool("unconditional", false, "checkpoint was trained without the class embedding (ClsWeight 0)")
		ready    = flag.String("ready-file", "", "write the bound address to this file once listening (smoke tests)")
	)
	flag.Parse()
	if *ckpt == "" {
		log.Fatal("-ckpt is required (train one with: mdgan-train -ckpt-out g.ckpt)")
	}
	arch, err := mdgan.ArchByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := mdgan.NewSampleServer(mdgan.ServeOptions{
		Arch: arch, Checkpoint: *ckpt,
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		Replicas: *replicas, Seed: *seed, Unconditional: *uncond,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s checkpoint %s (%s, max batch %d, window %v, %d replica(s)) on http://%s",
		arch.Name, *ckpt, tensor.DTypeName, *maxBatch, *maxWait, *replicas, ln.Addr())
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	hs := &http.Server{Handler: srv}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					log.Printf("reload failed (still serving the old checkpoint): %v", err)
				} else {
					log.Printf("reloaded %s", *ckpt)
				}
				continue
			}
			log.Printf("%v: draining", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			hs.Shutdown(ctx)
			cancel()
			return
		}
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	srv.Close()
	log.Print("bye")
}
