package mdgan_test

import (
	"reflect"
	"testing"

	"mdgan"
)

func TestParseFreeRiders(t *testing.T) {
	cases := []struct {
		spec string
		want map[int]mdgan.ByzantineMode
		ok   bool
	}{
		{"", nil, true},
		{"2", map[int]mdgan.ByzantineMode{0: mdgan.FreeRiderRandom, 1: mdgan.FreeRiderRandom}, true},
		{"1:replay", map[int]mdgan.ByzantineMode{0: mdgan.FreeRiderReplay}, true},
		{"2=noise, 5=replay", map[int]mdgan.ByzantineMode{2: mdgan.FreeRiderScaledNoise, 5: mdgan.FreeRiderReplay}, true},
		{"0", map[int]mdgan.ByzantineMode{}, true},
		{"x", nil, false},
		{"-1", nil, false},
		{"2:jam", nil, false},
		{"2=jam", nil, false},
		{"a=replay", nil, false},
		{"2replay", nil, false},
	}
	for _, tc := range cases {
		got, err := mdgan.ParseFreeRiders(tc.spec)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseFreeRiders(%q) err = %v, want ok=%v", tc.spec, err, tc.ok)
		}
		if tc.ok && len(tc.want) > 0 && !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseFreeRiders(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestParseLifetimes(t *testing.T) {
	got, err := mdgan.ParseLifetimes("1=0:40, 4=20:60")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]mdgan.Lifetime{
		1: {Join: 0, Retire: 40},
		4: {Join: 20, Retire: 60},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseLifetimes = %v, want %v", got, want)
	}
	if got, err := mdgan.ParseLifetimes(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
	for _, bad := range []string{"1", "1=5", "1=a:b", "x=0:5"} {
		if _, err := mdgan.ParseLifetimes(bad); err == nil {
			t.Fatalf("ParseLifetimes(%q) must error", bad)
		}
	}
}

// TestFreeRiderOptionsConflictWithByzantine: an index may not carry
// both a loud Byzantine assignment and a free-rider assignment, and
// FreeRiders entries must actually be free-rider modes.
func TestFreeRiderOptionsConflictWithByzantine(t *testing.T) {
	ds := mdgan.GaussianRing(100, 4, 1, 0.05, 1)
	base := mdgan.Options{Algorithm: mdgan.MDGAN, Workers: 3, Batch: 16, Iters: 2, Seed: 2}

	o := base
	o.Byzantine = map[int]mdgan.ByzantineMode{1: mdgan.ByzantineInvert}
	o.FreeRiders = map[int]mdgan.ByzantineMode{1: mdgan.FreeRiderReplay}
	if _, err := mdgan.Run(ds, mdgan.RingArch(), o, nil); err == nil {
		t.Fatal("conflicting byzantine + free-rider assignment must error")
	}
	o = base
	o.FreeRiders = map[int]mdgan.ByzantineMode{1: mdgan.ByzantineInvert}
	if _, err := mdgan.Run(ds, mdgan.RingArch(), o, nil); err == nil {
		t.Fatal("a non-free-rider mode in FreeRiders must error")
	}
}

// TestRobustnessOptionsWireThrough: the facade smoke for the
// robustness tentpole — free-riders, the defense, a temporary
// discriminator and the joiner warm-up all enabled through Options.
// The in-depth behavioral assertions live in internal/core; this pins
// that the public surface plumbs every knob through.
func TestRobustnessOptionsWireThrough(t *testing.T) {
	ds := mdgan.GaussianRing(600, 8, 2.0, 0.05, 3)
	res, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 4, Batch: 16, Iters: 12, Seed: 4,
		FreeRiders: map[int]mdgan.ByzantineMode{1: mdgan.FreeRiderRandom},
		Defense:    true,
		Lifetimes:  map[int]mdgan.Lifetime{2: {Retire: 8}},
		JoinWarmup: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Defense == nil {
		t.Fatal("defense-enabled run returned no defense snapshots")
	}
	if res.Faults.Retirements != 1 {
		t.Fatalf("faults = %+v, want the scheduled retirement recorded", res.Faults)
	}
}
