package mdgan_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mdgan"
	"mdgan/internal/tensor"
)

// TestCheckpointLoadsPreDtypeFile: checkpoints written before the
// versioned header and the wire dtype byte existed were bare
// concatenations of rank-first float64 tensor frames. Such a file must
// still load, whatever the compiled element type.
func TestCheckpointLoadsPreDtypeFile(t *testing.T) {
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	path := filepath.Join(t.TempDir(), "legacy.ckpt")

	// Write the legacy format by hand: [rank u32][dims u32…][f64…] per
	// parameter, no checkpoint magic, no dtype bytes.
	var legacy []byte
	for _, p := range g.G.Params() {
		legacy = binary.LittleEndian.AppendUint32(legacy, uint32(p.W.Rank()))
		for _, d := range p.W.Shape() {
			legacy = binary.LittleEndian.AppendUint32(legacy, uint32(d))
		}
		for _, v := range p.W.Data {
			legacy = binary.LittleEndian.AppendUint64(legacy, math.Float64bits(float64(v)))
		}
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	other := mdgan.MLPArch(32).NewGAN(2, 0, 1)
	if err := mdgan.LoadGenerator(other.G, path); err != nil {
		t.Fatalf("pre-dtype checkpoint rejected: %v", err)
	}
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	a, _ := g.G.Generate(4, rng1, false)
	b, _ := other.G.Generate(4, rng2, false)
	if !a.Equal(b, 0) {
		t.Fatal("legacy checkpoint load must reproduce the generator exactly")
	}
}

// New checkpoints carry the version header; a future version must be
// rejected loudly instead of being misparsed as parameter frames.
func TestCheckpointRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.ckpt")
	if err := os.WriteFile(path, []byte{'M', 'D', 'G', 99, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	if err := mdgan.LoadGenerator(g.G, path); err == nil {
		t.Fatal("future checkpoint version loaded without error")
	}
}

// TestCheckpointRejectsTrailingGarbage: a checkpoint followed by bytes
// the parameter frames do not account for is not a valid checkpoint —
// it is a concatenation, a partial overwrite by a larger older file, or
// a bigger architecture's checkpoint whose prefix happened to parse.
// LoadGenerator used to return success with the unread tail silently
// ignored; it must error instead.
func TestCheckpointRejectsTrailingGarbage(t *testing.T) {
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(g.G, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	other := mdgan.MLPArch(32).NewGAN(2, 0, 1)
	if err := mdgan.LoadGenerator(other.G, path); err == nil {
		t.Fatal("checkpoint with trailing garbage loaded without error")
	}
}

// A checkpoint saved by this build must lead with the version magic and
// dtype-framed parameters (size pins the format).
func TestCheckpointFormatPinned(t *testing.T) {
	g := mdgan.MLPArch(32).NewGAN(1, 0, 1)
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(g.G, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 5 || raw[0] != 'M' || raw[1] != 'D' || raw[2] != 'G' || raw[3] != 2 {
		t.Fatalf("checkpoint header = % x…, want MDG\\x02", raw[:4])
	}
	if raw[4] != tensor.NativeDType {
		t.Fatalf("first frame dtype byte %#x, want native %#x", raw[4], tensor.NativeDType)
	}
	want := int64(4)
	for _, p := range g.G.Params() {
		want += p.W.EncodedSize()
	}
	if int64(len(raw)) != want {
		t.Fatalf("checkpoint is %d bytes, want %d", len(raw), want)
	}
}
