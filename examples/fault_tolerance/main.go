// Fault tolerance: the Figure 5 experiment in miniature — a worker
// crashes (fail-stop, taking its data shard with it) every I/N
// iterations until none remain, and we compare against the crash-free
// run. Since the shared membership layer landed, the same crash
// schedule also runs through the FL-GAN baseline (round-granular) and
// through MD-GAN's pipelined engine, so all three appear below — plus
// a transient-fault contrast: the same cluster under a seeded chaotic
// transport with a round deadline, where suspects rejoin instead of
// dying and no shard is ever lost.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"time"

	"mdgan"
)

func main() {
	const (
		seed    = 3
		workers = 8
		iters   = 800
	)
	train := mdgan.SynthDigits(2000, seed)
	test := mdgan.SynthDigits(1000, seed+1)
	scorer := mdgan.TrainScorer(test, seed)
	ev := mdgan.NewEvaluator(scorer, test, 300)

	// Crash worker i at iteration (i+1)·I/N — by the end, every worker
	// (and every data shard) is gone.
	crashes := make(map[int][]int)
	for i := 0; i < workers; i++ {
		crashes[(i+1)*iters/workers] = append(crashes[(i+1)*iters/workers], i)
	}

	base := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: workers, Batch: 10,
		Iters: iters, EvalEvery: 200, Seed: seed, K: 2,
	}

	var curves []mdgan.Curve
	for _, cfg := range []struct {
		name    string
		crashAt map[int][]int
		mut     func(*mdgan.Options)
	}{
		{"md-gan (crash every I/N)", crashes, nil},
		{"md-gan pipelined (crash every I/N)", crashes, func(o *mdgan.Options) { o.Pipeline = true }},
		{"md-gan (no crashes)", nil, nil},
	} {
		o := base
		o.CrashAt = cfg.crashAt
		if cfg.mut != nil {
			cfg.mut(&o)
		}
		log.Printf("running %s ...", cfg.name)
		res, err := mdgan.Run(train, mdgan.MLPArch(64), o, ev)
		if err != nil {
			log.Fatal(err)
		}
		res.Curve.Name = cfg.name
		curves = append(curves, res.Curve)
		log.Printf("  survivors: %d of %d, %d generator updates applied", len(res.Live), workers, res.Iters)
	}

	// Transient faults: the same topology under a chaotic transport —
	// seeded random drops, delays and duplicates with a round deadline.
	// Unlike the fail-stop runs above, nobody dies: suspects are probed
	// back in and every shard keeps contributing.
	chaotic := base
	chaotic.RoundTimeout = 250 * time.Millisecond
	chaotic.SuspectAfter = 8
	chaotic.Chaos = &mdgan.ChaosConfig{
		Seed: seed, Drop: 0.002, Delay: 0.01, MaxDelay: 2 * time.Millisecond,
		Duplicate:    0.005,
		ProtectTypes: map[string]bool{"stop": true, "swap": true},
	}
	log.Printf("running md-gan (transient chaos, round deadline) ...")
	cres, err := mdgan.Run(train, mdgan.MLPArch(64), chaotic, ev)
	if err != nil {
		log.Fatal(err)
	}
	cres.Curve.Name = "md-gan (transient chaos)"
	curves = append(curves, cres.Curve)
	log.Printf("  survivors: %d of %d, faults: timeouts=%d rejoins=%d, injected: dropped=%d delayed=%d",
		len(cres.Live), workers, cres.Faults.Timeouts, cres.Faults.Rejoins,
		cres.Chaos.Dropped, cres.Chaos.Delayed)

	// FL-GAN under the same failure model: CrashAt is round-granular
	// there (a round is E·m/b local iterations), so crash one worker
	// per round until half the federation is gone.
	flCrashes := map[int][]int{}
	for i := 0; i < workers/2; i++ {
		flCrashes[i+2] = []int{i}
	}
	fl := base
	fl.Algorithm = mdgan.FLGAN
	fl.CrashAt = flCrashes
	log.Printf("running fl-gan (crash per round) ...")
	res, err := mdgan.Run(train, mdgan.MLPArch(64), fl, ev)
	if err != nil {
		log.Fatal(err)
	}
	res.Curve.Name = "fl-gan (crash per round)"
	curves = append(curves, res.Curve)
	log.Printf("  survivors: %d of %d, %d local iterations", len(res.Live), workers, res.Iters)

	fmt.Print(mdgan.FormatCurves("fault tolerance (Fig. 5 in miniature)", curves))
}
