// Fault tolerance: the Figure 5 experiment in miniature — a worker
// crashes (fail-stop, taking its data shard with it) every I/N
// iterations until none remain, and we compare against the crash-free
// run.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"

	"mdgan"
)

func main() {
	const (
		seed    = 3
		workers = 8
		iters   = 800
	)
	train := mdgan.SynthDigits(2000, seed)
	test := mdgan.SynthDigits(1000, seed+1)
	scorer := mdgan.TrainScorer(test, seed)
	ev := mdgan.NewEvaluator(scorer, test, 300)

	// Crash worker i at iteration (i+1)·I/N — by the end, every worker
	// (and every data shard) is gone.
	crashes := make(map[int][]int)
	for i := 0; i < workers; i++ {
		crashes[(i+1)*iters/workers] = append(crashes[(i+1)*iters/workers], i)
	}

	base := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: workers, Batch: 10,
		Iters: iters, EvalEvery: 200, Seed: seed, K: 2,
	}

	var curves []mdgan.Curve
	for _, cfg := range []struct {
		name    string
		crashAt map[int][]int
	}{
		{"md-gan (crash every I/N)", crashes},
		{"md-gan (no crashes)", nil},
	} {
		o := base
		o.CrashAt = cfg.crashAt
		log.Printf("running %s ...", cfg.name)
		res, err := mdgan.Run(train, mdgan.MLPArch(64), o, ev)
		if err != nil {
			log.Fatal(err)
		}
		res.Curve.Name = cfg.name
		curves = append(curves, res.Curve)
		log.Printf("  survivors: %d of %d, %d generator updates applied", len(res.Live), workers, res.Iters)
	}
	fmt.Print(mdgan.FormatCurves("fault tolerance (Fig. 5 in miniature)", curves))
}
