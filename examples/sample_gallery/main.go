// Sample gallery: train MD-GAN briefly on the digits stand-in, write
// PNG grids of real vs generated samples, and checkpoint the generator.
//
//	go run ./examples/sample_gallery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mdgan"
)

func main() {
	const seed = 6
	train := mdgan.SynthDigits(2000, seed)

	log.Println("training MD-GAN on digits (this takes ~10s) ...")
	res, err := mdgan.Run(train, mdgan.MLPArch(64), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10, Iters: 800, K: 2, Seed: seed,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	gen, _ := res.G.Generate(64, rng, false)

	if err := mdgan.SaveSampleGrid("real.png", train.X.SliceRows(0, 64), 8); err != nil {
		log.Fatal(err)
	}
	if err := mdgan.SaveSampleGrid("generated.png", gen, 8); err != nil {
		log.Fatal(err)
	}
	if err := mdgan.SaveGenerator(res.G, "generator.ckpt"); err != nil {
		log.Fatal(err)
	}

	// Round-trip the checkpoint into a fresh generator and verify it
	// reproduces the same samples.
	fresh := mdgan.MLPArch(64).NewGAN(999, 0, 1) // different init
	if err := mdgan.LoadGenerator(fresh.G, "generator.ckpt"); err != nil {
		log.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(1))
	gen2, _ := fresh.G.Generate(64, rng2, false)
	if gen.Equal(gen2, 0) {
		fmt.Println("checkpoint round-trip: bit-exact")
	} else {
		fmt.Println("WARNING: checkpoint round-trip mismatch")
	}
	fmt.Println("wrote real.png, generated.png, generator.ckpt")
}
