// Serving: the mdgan-train → mdgan-serve pipeline in one process.
// Train briefly on the Gaussian ring, checkpoint the generator, stand
// up the coalescing sample server on a loopback port, and hit it the
// way external clients would: concurrent POST /sample requests that
// the server fuses into batched forwards, then a /statusz read showing
// how well the coalescer batched them.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mdgan"
)

func main() {
	// 1. Train — a short MD-GAN run on the toy ring (see
	// examples/quickstart for the training side in detail).
	train := mdgan.GaussianRing(2000, 8, 2.0, 0.05, 1)
	res, err := mdgan.Run(train, mdgan.RingArch(), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 4, Batch: 32, Iters: 300, K: 2, Seed: 42,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Checkpoint. SaveGenerator writes atomically (temp file +
	// rename), so a trainer may keep rewriting this path while the
	// server below hot-reloads it.
	dir, err := os.MkdirTemp("", "mdgan-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "ring.ckpt")
	if err := mdgan.SaveGenerator(res.G, ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %s\n", ckpt)

	// 3. Serve. NewSampleServer loads the checkpoint and starts the
	// request coalescer; cmd/mdgan-serve is this plus flags and signal
	// handling. The 2ms window trades a little latency for fusing
	// concurrent requests into one batched forward.
	srv, err := mdgan.NewSampleServer(mdgan.ServeOptions{
		Arch:       mdgan.RingArch(),
		Checkpoint: ckpt,
		MaxBatch:   64,
		MaxWait:    2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// 4. Load it like a client fleet: 16 concurrent samplers, each
	// requesting a few samples. The server parks them on the batch
	// window and answers all of them from fused forwards.
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Post(base+"/sample?n=4", "", nil)
				if err != nil {
					log.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("POST /sample: %s", resp.Status)
				}
			}
		}()
	}
	wg.Wait()

	// 5. The coalescing evidence: far fewer forwards than requests.
	st := srv.Status()
	fmt.Printf("requests=%d samples=%d forwards=%d (avg batch %.1f), p99 %.2fms\n",
		st.Requests, st.Samples, st.Forwards, st.AvgBatch, st.LatencyP99Ms)
	if st.Forwards >= st.Requests {
		log.Fatal("coalescer fused nothing — every request paid a full forward")
	}
}
