// Distributed digits: the Figure 3 experiment in miniature — train the
// three competitors (standalone, FL-GAN, MD-GAN) on the MNIST stand-in
// and compare their score/FID trajectories.
//
//	go run ./examples/distributed_digits
package main

import (
	"fmt"
	"log"

	"mdgan"
)

func main() {
	const seed = 1
	train := mdgan.SynthDigits(2000, seed)
	test := mdgan.SynthDigits(1000, seed+1)

	log.Println("training the metric classifier (the paper's MNIST-score substitute) ...")
	scorer := mdgan.TrainScorer(test, seed)
	ev := mdgan.NewEvaluator(scorer, test, 300)

	arch := mdgan.MLPArch(64)
	base := mdgan.Options{Workers: 10, Batch: 10, Iters: 800, EvalEvery: 200, Seed: seed}

	var curves []mdgan.Curve
	for _, cfg := range []struct {
		name string
		o    mdgan.Options
	}{
		{"standalone b=10", withAlgo(base, mdgan.Standalone)},
		{"fl-gan b=10", withAlgo(base, mdgan.FLGAN)},
		{"md-gan k=2", withK(withAlgo(base, mdgan.MDGAN), 2)},
	} {
		log.Printf("running %s ...", cfg.name)
		res, err := mdgan.Run(train, arch, cfg.o, ev)
		if err != nil {
			log.Fatal(err)
		}
		res.Curve.Name = cfg.name
		curves = append(curves, res.Curve)
	}
	fmt.Print(mdgan.FormatCurves("distributed digits (Fig. 3 in miniature)", curves))
	fmt.Println("score: higher is better (max 10) · FID: lower is better")
}

func withAlgo(o mdgan.Options, a mdgan.Algorithm) mdgan.Options {
	o.Algorithm = a
	return o
}

func withK(o mdgan.Options, k int) mdgan.Options {
	o.K = k
	return o
}
