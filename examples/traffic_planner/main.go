// Traffic planner: dimension the network for an MD-GAN or FL-GAN
// deployment (the Figure 2 / Table IV analysis) — given a model and a
// cluster size, print per-link traffic and find the batch size at which
// FL-GAN becomes cheaper than MD-GAN.
//
//	go run ./examples/traffic_planner
package main

import (
	"fmt"

	"mdgan"
)

func main() {
	// Plan for the paper's CIFAR10 deployment on 10 workers...
	p := mdgan.PaperCIFARComplexity()
	fmt.Print(mdgan.FormatTableIV(mdgan.ComputeTableIV(p, []int{10, 100})))
	fmt.Println()

	// ...and sweep the batch size to find the protocol crossover.
	batches := []int{1, 10, 100, 1000, 10000}
	fmt.Print(mdgan.FormatFig2("CIFAR10", p, mdgan.ComputeFig2(p, batches)))
	fmt.Println()

	// The same analysis with the parameter counts of THIS repository's
	// paper-shaped CNN, instead of the paper's published counts.
	w, theta := mdgan.ArchParams(mdgan.PaperCNNCIFARArch(), 1)
	q := p
	q.W, q.Theta = w, theta
	fmt.Printf("this repo's paper-shaped CIFAR CNN: |w|=%d |θ|=%d\n", w, theta)
	fmt.Printf("protocol crossover with these sizes: b ≈ %.0f\n", mdgan.CrossoverBatch(q))
	fmt.Printf("per-worker compute reduction vs FL-GAN: %.2f×\n", mdgan.WorkerReduction(q))
}
