// Quickstart: train MD-GAN on the 2-D Gaussian-ring toy dataset with
// four workers and watch generated samples land on the ring.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mdgan"
)

func main() {
	// A ring of 8 Gaussians with radius 2 — the classic GAN toy set.
	train := mdgan.GaussianRing(4000, 8, 2.0, 0.05, 1)

	res, err := mdgan.Run(train, mdgan.RingArch(), mdgan.Options{
		Algorithm: mdgan.MDGAN,
		Workers:   4,
		Batch:     32,
		Iters:     600,
		K:         2, // two generated batches per iteration
		Seed:      42,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Sample the trained generator and summarise where points landed.
	rng := rand.New(rand.NewSource(7))
	x, _ := res.G.Generate(512, rng, false)
	var sum, within float64
	for i := 0; i < x.Dim(0); i++ {
		r := math.Hypot(x.At(i, 0), x.At(i, 1))
		sum += r
		if r > 1.5 && r < 2.5 {
			within++
		}
	}
	fmt.Printf("trained MD-GAN on %d samples across 4 workers\n", train.Len())
	fmt.Printf("mean generated radius: %.2f (target 2.00)\n", sum/float64(x.Dim(0)))
	fmt.Printf("samples within the ring band: %.0f%%\n", 100*within/float64(x.Dim(0)))
	fmt.Printf("mode coverage: %.0f%% of 8 modes (collapse detector)\n",
		100*mdgan.ModeCoverage(x, 8, 2.0, 0.5))
	fmt.Printf("traffic: %d bytes total across %d worker-server links\n",
		res.Traffic.Total(), len(res.Traffic.IngressByNode))
}
