// TCP cluster: run MD-GAN with workers communicating over real
// loopback TCP sockets (the same wire encodings a cross-machine
// deployment would use) and verify the result is identical to the
// in-process transport.
//
//	go run ./examples/tcp_cluster
package main

import (
	"fmt"
	"log"

	"mdgan"
)

func main() {
	train := mdgan.GaussianRing(2000, 8, 2.0, 0.05, 1)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 4, Batch: 16, Iters: 100, Seed: 9, K: 2,
	}

	log.Println("running over in-process channels ...")
	inproc, err := mdgan.Run(train, mdgan.RingArch(), o, nil)
	if err != nil {
		log.Fatal(err)
	}

	log.Println("running over loopback TCP ...")
	o.UseTCP = true
	tcp, err := mdgan.Run(train, mdgan.RingArch(), o, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The algorithm is deterministic given the seed, so both transports
	// must produce the same traffic volume; the trained generators are
	// also byte-identical (message arrival order never affects the
	// server's merge).
	fmt.Printf("in-process traffic: %d bytes\n", inproc.Traffic.Total())
	fmt.Printf("tcp       traffic: %d bytes\n", tcp.Traffic.Total())
	if inproc.Traffic.Total() == tcp.Traffic.Total() {
		fmt.Println("transport-independent traffic accounting: OK")
	} else {
		fmt.Println("WARNING: traffic differs between transports")
	}
}
