package mdgan

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failAfterWriter errors once budget bytes have been written — the
// shape of a crash or full-disk failure mid-checkpoint.
type failAfterWriter struct {
	w      io.Writer
	budget int
}

func (fw *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > fw.budget {
		n, _ := fw.w.Write(p[:fw.budget])
		fw.budget = 0
		return n, errors.New("injected short write")
	}
	fw.budget -= len(p)
	return fw.w.Write(p)
}

// TestSaveGeneratorAtomicOnWriteFailure: a save that dies mid-write
// must leave the last good checkpoint untouched. Before SaveGenerator
// wrote through a temp file + rename, the failed write truncated the
// destination in place — the serving tier's hot-reload would then read
// a half-checkpoint where a good one used to be.
func TestSaveGeneratorAtomicOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ckpt")
	g1 := MLPArch(16).NewGAN(1, 0, 1)
	g2 := MLPArch(16).NewGAN(2, 0, 1)
	if err := SaveGenerator(g1.G, path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	checkpointWriteWrap = func(w io.Writer) io.Writer {
		return &failAfterWriter{w: w, budget: 64}
	}
	defer func() { checkpointWriteWrap = nil }()
	if err := SaveGenerator(g2.G, path); err == nil {
		t.Fatal("save with an injected short write reported success")
	}
	checkpointWriteWrap = nil

	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, now) {
		t.Fatalf("failed save clobbered the last good checkpoint (%d bytes, want %d)", len(now), len(orig))
	}
	g3 := MLPArch(16).NewGAN(3, 0, 1)
	if err := LoadGenerator(g3.G, path); err != nil {
		t.Fatalf("checkpoint no longer loads after failed save: %v", err)
	}

	// The aborted temp file must not litter the checkpoint directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("failed save left temp file %s behind", e.Name())
		}
	}
}

// TestSaveGeneratorBareRelativePath: a path with no directory component
// must stage its temp file in the current directory, not os.TempDir().
// Before the fix, filepath.Split handed dir="" to os.CreateTemp, which
// falls back to os.TempDir() — the rename into the cwd then fails with
// EXDEV whenever /tmp is a different filesystem (tmpfs, the common
// Linux default), and even when it succeeds the replace is not the
// documented same-directory atomic rename.
func TestSaveGeneratorBareRelativePath(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	g := MLPArch(16).NewGAN(6, 0, 1)
	if err := SaveGenerator(g.G, "g.ckpt"); err != nil {
		t.Fatalf("save with bare relative path: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.ckpt" {
		t.Fatalf("cwd contents = %v, want exactly g.ckpt", entries)
	}
	other := MLPArch(16).NewGAN(7, 0, 1)
	if err := LoadGenerator(other.G, "g.ckpt"); err != nil {
		t.Fatal(err)
	}
	// The temp file must have been staged next to the destination: a
	// failed save with a bare path must abort without touching the
	// destination and without leaving droppings in either directory.
	checkpointWriteWrap = func(w io.Writer) io.Writer {
		return &failAfterWriter{w: w, budget: 64}
	}
	defer func() { checkpointWriteWrap = nil }()
	if err := SaveGenerator(other.G, "g.ckpt"); err == nil {
		t.Fatal("save with an injected short write reported success")
	}
	checkpointWriteWrap = nil
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.ckpt" {
		t.Fatalf("cwd contents after failed save = %v, want exactly g.ckpt", entries)
	}
}

// A successful save must still be a plain readable file at path (the
// rename landed) and must round-trip.
func TestSaveGeneratorRenamesIntoPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ckpt")
	g := MLPArch(16).NewGAN(4, 0, 1)
	if err := SaveGenerator(g.G, path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.ckpt" {
		t.Fatalf("checkpoint dir contents = %v, want exactly g.ckpt", entries)
	}
	other := MLPArch(16).NewGAN(5, 0, 1)
	if err := LoadGenerator(other.G, path); err != nil {
		t.Fatal(err)
	}
}
