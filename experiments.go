package mdgan

import (
	"fmt"
	"math"

	"mdgan/internal/complexity"
	"mdgan/internal/gan"
)

// This file maps every table and figure of the paper's evaluation to a
// runnable experiment (the per-experiment index lives in DESIGN.md §4).
// Experiments accept a Scale so the same code drives both the quick
// benchmark suite (minutes on a laptop) and fuller runs.

// Scale sizes an experiment.
type Scale struct {
	TrainSamples int // |B|: total training samples
	Iters        int // I: generator updates
	EvalEvery    int // metric cadence
	EvalSamples  int // samples per metric evaluation (paper: 500)
	Workers      int // N (panels that don't sweep N)
	ImgSize      int // resolution for the CNN panels
	MLPHidden    int // hidden width of the scaled MLP
	// Pipeline runs every MD-GAN competitor through the pipelined
	// engine instead of the strict Algorithm 1 barrier (one-iteration
	// parameter staleness; mdgan-bench exposes it as -pipeline).
	Pipeline bool
}

// QuickScale finishes the whole suite in minutes on a laptop CPU.
var QuickScale = Scale{
	TrainSamples: 1500,
	Iters:        400,
	EvalEvery:    100,
	EvalSamples:  200,
	Workers:      10,
	ImgSize:      16,
	MLPHidden:    64,
}

// FullScale is closer to the paper's setting (hours on CPU).
var FullScale = Scale{
	TrainSamples: 20000,
	Iters:        5000,
	EvalEvery:    500,
	EvalSamples:  500,
	Workers:      10,
	ImgSize:      28,
	MLPHidden:    256,
}

// Fig3Panel identifies one panel of Figure 3.
type Fig3Panel string

// The three panels of Figure 3.
const (
	Fig3MNISTMLP Fig3Panel = "mnist-mlp"
	Fig3MNISTCNN Fig3Panel = "mnist-cnn"
	Fig3CIFARCNN Fig3Panel = "cifar-cnn"
)

// panelData builds the dataset/architecture pair for a Fig. 3 panel.
func panelData(panel Fig3Panel, sc Scale, seed int64) (*Dataset, *Dataset, Arch, error) {
	switch panel {
	case Fig3MNISTMLP:
		return SynthDigits(sc.TrainSamples, seed),
			SynthDigits(sc.EvalSamples*4, seed+1),
			MLPArch(sc.MLPHidden), nil
	case Fig3MNISTCNN:
		return SynthDigitsSized(sc.TrainSamples, sc.ImgSize, seed),
			SynthDigitsSized(sc.EvalSamples*4, sc.ImgSize, seed+1),
			CNNArch(1, sc.ImgSize, 10), nil
	case Fig3CIFARCNN:
		return SynthCIFARSized(sc.TrainSamples, sc.ImgSize, seed),
			SynthCIFARSized(sc.EvalSamples*4, sc.ImgSize, seed+1),
			CNNArch(3, sc.ImgSize, 10), nil
	default:
		return nil, nil, Arch{}, fmt.Errorf("mdgan: unknown Fig3 panel %q", panel)
	}
}

// RunFig3 reproduces one panel of Figure 3: score and FID trajectories
// for standalone (two batch sizes), FL-GAN (two batch sizes) and MD-GAN
// (k = 1 and k = ⌊ln N⌋).
func RunFig3(panel Fig3Panel, sc Scale) ([]Curve, error) {
	const seed = 1
	train, test, arch, err := panelData(panel, sc, seed)
	if err != nil {
		return nil, err
	}
	scorer := TrainScorer(test, seed)
	ev := NewEvaluator(scorer, test, sc.EvalSamples)

	b1, b2 := 10, 50
	base := Options{
		Workers: sc.Workers, Iters: sc.Iters, EvalEvery: sc.EvalEvery, Seed: seed,
	}
	kLog := int(math.Floor(math.Log(float64(sc.Workers))))
	if kLog < 1 {
		kLog = 1
	}
	runs := []struct {
		name string
		o    Options
	}{
		{fmt.Sprintf("standalone b=%d", b1), with(base, func(o *Options) { o.Algorithm = Standalone; o.Batch = b1 })},
		{fmt.Sprintf("standalone b=%d", b2), with(base, func(o *Options) { o.Algorithm = Standalone; o.Batch = b2 })},
		{fmt.Sprintf("fl-gan b=%d", b1), with(base, func(o *Options) { o.Algorithm = FLGAN; o.Batch = b1 })},
		{fmt.Sprintf("fl-gan b=%d", b2), with(base, func(o *Options) { o.Algorithm = FLGAN; o.Batch = b2 })},
		{"md-gan k=1", with(base, func(o *Options) { o.Algorithm = MDGAN; o.Batch = b1; o.K = 1; o.Pipeline = sc.Pipeline })},
		{fmt.Sprintf("md-gan k=%d", kLog), with(base, func(o *Options) { o.Algorithm = MDGAN; o.Batch = b1; o.K = kLog; o.Pipeline = sc.Pipeline })},
	}
	curves := make([]Curve, 0, len(runs))
	for _, r := range runs {
		res, err := Run(train, arch, r.o, ev)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s/%s: %w", panel, r.name, err)
		}
		res.Curve.Name = r.name
		curves = append(curves, res.Curve)
	}
	return curves, nil
}

func with(o Options, f func(*Options)) Options {
	f(&o)
	return o
}

// WorkerSweep is the canonical cluster-size axis of the per-K
// throughput benchmarks and the BENCH_<n>.json trajectory rows
// (BenchmarkMDGANIterationK and cmd/mdgan-bench share it, so the two
// can never drift apart). The tail (100–500) is where the flat star's
// server ingress saturates and the tree topology starts paying off;
// the training-backed Figure 4 sweep caps itself at 50 workers in
// quick scale because it trains to convergence at every point.
var WorkerSweep = []int{1, 5, 10, 25, 50, 100, 250, 500}

// Fig4Row is one point of Figure 4: final score and FID for a worker
// count under one of the four variants.
type Fig4Row struct {
	N       int
	Variant string // "const-worker" or "const-server"
	Swap    bool
	Score   float64
	FID     float64
}

// RunFig4 reproduces Figure 4: MD-GAN (MLP) final metrics versus the
// number of workers, swap on/off, under constant per-worker workload
// (shard size fixed, blue curves) and constant server workload (total
// dataset fixed, batch shrinking with N, orange curves).
func RunFig4(ns []int, sc Scale) ([]Fig4Row, error) {
	const seed = 2
	test := SynthDigits(sc.EvalSamples*4, seed+1)
	scorer := TrainScorer(test, seed)
	ev := NewEvaluator(scorer, test, sc.EvalSamples)

	perWorker := sc.TrainSamples / sc.Workers // shard size of the reference config
	var rows []Fig4Row
	for _, variant := range []string{"const-worker", "const-server"} {
		for _, swap := range []bool{true, false} {
			for _, n := range ns {
				var train *Dataset
				b := 10
				switch variant {
				case "const-worker":
					// |B_n| fixed: dataset grows with N.
					train = SynthDigits(perWorker*n, seed)
				case "const-server":
					// |B| fixed: shards shrink; batch shrinks to keep
					// the server's k·b generation workload constant.
					train = SynthDigits(sc.TrainSamples, seed)
					b = 40 / n
					if b < 2 {
						b = 2
					}
				}
				o := Options{
					Algorithm: MDGAN, Workers: n, Batch: b,
					Iters: sc.Iters, EvalEvery: sc.Iters, Seed: seed,
					K: 1, Pipeline: sc.Pipeline,
				}
				if !swap {
					o.SwapEvery = -1
				}
				res, err := Run(train, MLPArch(sc.MLPHidden), o, ev)
				if err != nil {
					return nil, fmt.Errorf("fig4 N=%d %s swap=%v: %w", n, variant, swap, err)
				}
				s, f := res.Curve.Last()
				rows = append(rows, Fig4Row{N: n, Variant: variant, Swap: swap, Score: s, FID: f})
			}
		}
	}
	return rows, nil
}

// RunFig5 reproduces Figure 5: MD-GAN with a worker crashing every
// I/N iterations (all workers dead by the end) against the no-crash run
// and the standalone baselines.
func RunFig5(panel Fig3Panel, sc Scale) ([]Curve, error) {
	const seed = 3
	train, test, arch, err := panelData(panel, sc, seed)
	if err != nil {
		return nil, err
	}
	scorer := TrainScorer(test, seed)
	ev := NewEvaluator(scorer, test, sc.EvalSamples)

	n := sc.Workers
	kLog := int(math.Floor(math.Log(float64(n))))
	if kLog < 1 {
		kLog = 1
	}
	// One crash every I/N iterations: worker i dies at (i+1)·I/N.
	crashes := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		it := (i + 1) * sc.Iters / n
		if it < 1 {
			it = 1
		}
		crashes[it] = append(crashes[it], i)
	}
	base := Options{Workers: n, Batch: 10, Iters: sc.Iters, EvalEvery: sc.EvalEvery, Seed: seed, K: kLog, Pipeline: sc.Pipeline}
	runs := []struct {
		name string
		o    Options
	}{
		{"md-gan (crashes)", with(base, func(o *Options) { o.Algorithm = MDGAN; o.CrashAt = crashes })},
		{"md-gan (no crash)", with(base, func(o *Options) { o.Algorithm = MDGAN })},
		{"standalone b=10", with(base, func(o *Options) { o.Algorithm = Standalone; o.Batch = 10 })},
		{"standalone b=50", with(base, func(o *Options) { o.Algorithm = Standalone; o.Batch = 50 })},
	}
	curves := make([]Curve, 0, len(runs))
	for _, r := range runs {
		res, err := Run(train, arch, r.o, ev)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", r.name, err)
		}
		res.Curve.Name = r.name
		curves = append(curves, res.Curve)
	}
	return curves, nil
}

// RunFig6 reproduces Figure 6: the larger-dataset (CelebA stand-in)
// validation with per-competitor Adam settings, N = 5 workers, MD-GAN
// at a five-fold smaller batch (paper: 200 vs 40) so all competitors
// process the same number of images per generator update.
func RunFig6(sc Scale) ([]Curve, error) {
	const seed = 4
	train := SynthFaces(sc.TrainSamples, seed)
	test := SynthFaces(sc.EvalSamples*4, seed+1)
	scorer := TrainScorer(test, seed)
	ev := NewEvaluator(scorer, test, sc.EvalSamples)
	arch := FacesArch()
	if sc.ImgSize < 32 {
		arch = CNNArch(3, 32, 0) // lighter generator for quick runs
	}

	bBig, bSmall := 50, 10 // paper: 200 and 40, same 5× ratio
	runs := []struct {
		name string
		o    Options
	}{
		// Paper §V-B4: standalone/FL-GAN use lr 3e-3 (G) / 2e-3 (D),
		// β1 = 0.5, β2 = 0.999.
		{"standalone", Options{Algorithm: Standalone, Batch: bBig, Iters: sc.Iters,
			EvalEvery: sc.EvalEvery, Seed: seed, LRG: 3e-3, LRD: 2e-3, Beta1: 0.5, Beta2: 0.999}},
		{"fl-gan N=5", Options{Algorithm: FLGAN, Workers: 5, Batch: bBig, Iters: sc.Iters,
			EvalEvery: sc.EvalEvery, Seed: seed, LRG: 3e-3, LRD: 2e-3, Beta1: 0.5, Beta2: 0.999}},
		// MD-GAN uses lr 1e-3 (G) / 4e-3 (D), β1 = 0, β2 = 0.9 (β1 is
		// encoded as a tiny positive value since 0 selects the default).
		{"md-gan N=5", Options{Algorithm: MDGAN, Workers: 5, Batch: bSmall, Iters: sc.Iters,
			EvalEvery: sc.EvalEvery, Seed: seed, LRG: 1e-3, LRD: 4e-3, Beta1: 1e-9, Beta2: 0.9, K: 1,
			Pipeline: sc.Pipeline}},
	}
	curves := make([]Curve, 0, len(runs))
	for _, r := range runs {
		res, err := Run(train, arch, r.o, ev)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", r.name, err)
		}
		res.Curve.Name = r.name
		curves = append(curves, res.Curve)
	}
	return curves, nil
}

// ComplexityParams re-exports the analytic model inputs.
type ComplexityParams = complexity.Params

// TableII re-exports the Table II evaluation.
type TableII = complexity.TableII

// TableIVRow re-exports one Table IV column.
type TableIVRow = complexity.TableIVRow

// Fig2Series re-exports the Figure 2 sweep.
type Fig2Series = complexity.Fig2Series

// PaperMNISTComplexity returns the paper's MNIST deployment constants.
func PaperMNISTComplexity() ComplexityParams { return complexity.PaperMNISTParams() }

// PaperCIFARComplexity returns the paper's CIFAR10 deployment constants.
func PaperCIFARComplexity() ComplexityParams { return complexity.PaperCIFARParams() }

// ComputeTableII evaluates Table II.
func ComputeTableII(p ComplexityParams) TableII { return complexity.ComputeTableII(p) }

// ComputeTableIV evaluates Table IV.
func ComputeTableIV(p ComplexityParams, batches []int) []TableIVRow {
	return complexity.ComputeTableIV(p, batches)
}

// ComputeFig2 evaluates the Figure 2 ingress-traffic sweep.
func ComputeFig2(p ComplexityParams, batches []int) Fig2Series {
	return complexity.ComputeFig2(p, batches)
}

// CrossoverBatch returns the MD-GAN/FL-GAN worker-traffic crossover.
func CrossoverBatch(p ComplexityParams) float64 { return complexity.CrossoverBatch(p) }

// WorkerReduction returns the Table II headline factor
// ((|w|+|θ|)/|θ| ≈ 2).
func WorkerReduction(p ComplexityParams) float64 { return complexity.WorkerReduction(p) }

// BytesToMB converts bytes to MiB as the paper's tables report.
func BytesToMB(b float64) float64 { return complexity.MB(b) }

// ArchParams returns (|w|, |θ|) for an architecture — feeding measured
// parameter counts into the complexity models.
func ArchParams(a Arch, seed int64) (w, theta int) {
	m := a.NewGAN(seed, 0, 1)
	return m.G.NumParams(), m.D.NumParams()
}

// archNewGAN is a tiny indirection so this file does not import nn just
// for the loss-mode constant.
var _ = gan.Arch{}
