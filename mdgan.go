// Package mdgan is a pure-Go implementation of MD-GAN — Multi-
// Discriminator Generative Adversarial Networks for Distributed
// Datasets (Hardy, Le Merrer, Sericola; IPDPS 2019) — together with the
// two baselines the paper evaluates against (standalone GAN training
// and FL-GAN, federated averaging adapted to GANs), the synthetic
// datasets, the evaluation metrics (classifier score and FID) and the
// communication-cost models of the paper's Tables II–IV and Figure 2.
//
// The package is a facade: the heavy lifting lives in internal/
// packages (tensor math, layers, optimisers, the cluster substrate),
// and the types needed at the API surface are re-exported as aliases.
//
// Quick start:
//
//	ds := mdgan.GaussianRing(4000, 8, 2.0, 0.05, 1)
//	res, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{
//		Algorithm: mdgan.MDGAN, Workers: 4, Iters: 500,
//	}, nil)
package mdgan

import (
	"fmt"
	"math/rand"
	"time"

	"mdgan/internal/cluster"
	"mdgan/internal/core"
	"mdgan/internal/dataset"
	"mdgan/internal/flgan"
	"mdgan/internal/gan"
	"mdgan/internal/metrics"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// Re-exported types. External importers use these names; the internal
// packages stay private.
type (
	// Dataset is an in-memory labelled dataset.
	Dataset = dataset.Dataset
	// Scorer computes the classifier score and FID.
	Scorer = metrics.Scorer
	// Arch is a GAN architecture specification.
	Arch = gan.Arch
	// Generator is a trained generator.
	Generator = gan.Generator
	// GAN is a generator/discriminator couple.
	GAN = gan.GAN
	// Traffic is a communication accounting snapshot.
	Traffic = simnet.Traffic
	// Tensor is a dense numeric array.
	Tensor = tensor.Tensor
)

// Extension knobs re-exported from the core (paper §VII).
type (
	// Compression selects the error-feedback wire encoding (§VII.2).
	Compression = core.Compression
	// ByzantineMode describes a compromised worker's attack (§VII.3).
	ByzantineMode = core.ByzantineMode
	// Aggregation selects the server's feedback-merge rule.
	Aggregation = core.Aggregation
	// SwapPrecision selects the wire width of discriminator swap
	// payloads (SwapFP32 by default — half of Table III's W→W row on
	// the float64 build).
	SwapPrecision = core.SwapPrecision
	// DefenseConfig tunes the server-side feedback-quality defense
	// against free-riders (zero-valued knobs pick the defaults).
	DefenseConfig = core.DefenseConfig
	// Lifetime bounds one worker's participation window (temporary
	// discriminators): a join round and a graceful retire round.
	Lifetime = cluster.Lifetime
	// DefenseScore is a worker's end-of-run feedback-quality snapshot
	// (suspicion, average cosine, replay hits), under Faults.Defense.
	DefenseScore = cluster.DefenseScore
)

// Fault-tolerance surface: transient-fault accounting and the seeded
// chaos transport used to exercise it.
type (
	// FaultStats is a run's transient-fault accounting (timeouts,
	// suspects, demotions, rejoins, corrupt frames, transport retries).
	FaultStats = cluster.FaultStats
	// ChaosConfig parameterises the seeded fault-injecting transport
	// wrapper (drop/delay/duplicate/corrupt probabilities).
	ChaosConfig = simnet.ChaosConfig
	// ChaosStats counts the faults a ChaosNet actually injected.
	ChaosStats = simnet.ChaosStats
	// LinkKind classifies a message's link (CtoW, WtoC, WtoW) — used
	// to scope ChaosConfig.CorruptKinds.
	LinkKind = simnet.Kind
)

// Link kinds for ChaosConfig.CorruptKinds.
const (
	LinkCtoW = simnet.CtoW
	LinkWtoC = simnet.WtoC
	LinkWtoW = simnet.WtoW
)

// Re-exported extension constants.
const (
	CompressNone = core.CompressNone
	CompressFP32 = core.CompressFP32
	CompressTopK = core.CompressTopK

	SwapFP32   = core.SwapFP32
	SwapNative = core.SwapNative

	ByzantineNone   = core.ByzantineNone
	ByzantineRandom = core.ByzantineRandom
	ByzantineInvert = core.ByzantineInvert
	ByzantineScale  = core.ByzantineScale

	// Free-rider attacks: fabricated feedback, no discriminator run.
	FreeRiderRandom      = core.FreeRiderRandom
	FreeRiderReplay      = core.FreeRiderReplay
	FreeRiderScaledNoise = core.FreeRiderScaledNoise

	AggMean        = core.AggMean
	AggMedian      = core.AggMedian
	AggTrimmedMean = core.AggTrimmedMean
)

// Algorithm selects one of the three training algorithms of the paper.
type Algorithm string

// The competing approaches of §V.
const (
	Standalone Algorithm = "standalone"
	FLGAN      Algorithm = "fl-gan"
	MDGAN      Algorithm = "md-gan"
)

// Dataset constructors (synthetic stand-ins for the paper's datasets —
// see DESIGN.md §2 for the substitution rationale).

// SynthDigits generates an MNIST-like dataset: n 28×28 grayscale digit
// images in 10 classes.
func SynthDigits(n int, seed int64) *Dataset { return dataset.SynthDigits(n, seed) }

// SynthDigitsSized generates digit images at a custom resolution.
func SynthDigitsSized(n, size int, seed int64) *Dataset {
	return dataset.SynthDigitsWith(n, seed, dataset.DigitsOpts{Size: size})
}

// SynthCIFAR generates a CIFAR10-like dataset: n 32×32 RGB images in 10
// classes.
func SynthCIFAR(n int, seed int64) *Dataset { return dataset.SynthCIFAR(n, seed) }

// SynthCIFARSized generates CIFAR-like images at a custom resolution.
func SynthCIFARSized(n, size int, seed int64) *Dataset {
	return dataset.SynthCIFARSize(n, seed, size)
}

// SynthFaces generates a CelebA-like dataset: n 32×32 RGB face images
// with 8 attribute classes.
func SynthFaces(n int, seed int64) *Dataset { return dataset.SynthFaces(n, seed) }

// GaussianRing generates the 2-D mixture-of-Gaussians toy dataset.
func GaussianRing(n, modes int, radius, std float64, seed int64) *Dataset {
	return dataset.GaussianRing(n, modes, radius, std, seed)
}

// Split partitions a dataset into n i.i.d. shards (one per worker).
func Split(ds *Dataset, n int, seed int64) []*Dataset { return dataset.Split(ds, n, seed) }

// SplitNonIID partitions with label skew in [0, 1] (0 = i.i.d., 1 =
// pathological sort-by-label), relaxing the paper's i.i.d. assumption.
func SplitNonIID(ds *Dataset, n int, skew float64, seed int64) []*Dataset {
	return dataset.SplitNonIID(ds, n, skew, seed)
}

// LabelSkew measures a shard's class-distribution distance from its
// parent as total variation in [0, 1].
func LabelSkew(shard, parent *Dataset) float64 { return dataset.LabelSkew(shard, parent) }

// Architecture selectors.

// PaperMLPArch returns the paper's exact MLP architecture
// (716,560 / 670,219 parameters).
func PaperMLPArch() Arch { return gan.PaperMLP() }

// MLPArch returns a width-h MLP for 28×28 images.
func MLPArch(h int) Arch { return gan.ScaledMLP(h) }

// CNNArch returns a scaled convolutional architecture for size×size
// images with c channels and the given class count.
func CNNArch(c, size, classes int) Arch { return gan.ScaledCNN(c, size, classes) }

// PaperCNNMNISTArch returns the paper-shaped CNN for MNIST.
func PaperCNNMNISTArch() Arch { return gan.PaperCNNMNIST() }

// PaperCNNCIFARArch returns the paper-shaped CNN for CIFAR10.
func PaperCNNCIFARArch() Arch { return gan.PaperCNNCIFAR() }

// FacesArch returns the Fig. 6 (CelebA) architecture adapted to 32×32.
func FacesArch() Arch { return gan.FacesCNN() }

// RingArch returns the tiny GAN for the Gaussian-ring toy set.
func RingArch() Arch { return gan.RingMLP() }

// ArchFor picks a sensible architecture for a dataset by its geometry.
func ArchFor(ds *Dataset) Arch {
	switch {
	case ds.C == 0:
		return gan.RingMLP()
	case ds.C == 1 && ds.H == 28:
		return gan.ScaledMLP(128)
	default:
		return gan.ScaledCNN(ds.C, ds.H, ds.Classes)
	}
}

// TrainScorer fits the metric classifier on a labelled dataset.
// Training takes a few seconds; reuse the scorer across runs.
func TrainScorer(ds *Dataset, seed int64) *Scorer {
	return metrics.TrainScorer(ds, metrics.ScorerConfig{Seed: seed})
}

// ModeCoverage reports the fraction of Gaussian-ring modes hit by the
// generated 2-D points (diversity: 1 = all modes, 1/modes = collapse).
func ModeCoverage(x *Tensor, modes int, radius, tol float64) float64 {
	return metrics.ModeCoverage(x, modes, radius, tol)
}

// HighQualityFraction reports the share of generated 2-D points within
// tol of any ring mode (sample quality).
func HighQualityFraction(x *Tensor, modes int, radius, tol float64) float64 {
	return metrics.HighQualityFraction(x, modes, radius, tol)
}

// Options configures a training run. Zero values select the experiment
// defaults noted per field.
type Options struct {
	Algorithm Algorithm // default MDGAN
	Workers   int       // N; default 10 (ignored by Standalone)
	K         int       // MD-GAN batches/iteration; 0 → ⌊ln N⌋ (≥1)
	SwapEvery int       // E epochs between swaps; 0 → 1; <0 disables
	Epochs    int       // FL-GAN local epochs per round; 0 → 1
	Async     bool      // MD-GAN asynchronous mode (§VII.1)
	// Pipeline runs synchronous MD-GAN through the one-round-deep
	// pipelined engine: the server generates and encodes round t+1's
	// batches while workers compute round t, at the documented cost of
	// one iteration of generator-parameter staleness. False (default)
	// is the paper's strict Algorithm 1.
	Pipeline bool

	Batch     int     // b; default 10
	Iters     int     // I (generator updates); default 100
	DiscSteps int     // L; default 1; <0 → none
	LRG       float64 // generator Adam learning rate; default 1e-3
	LRD       float64 // discriminator Adam learning rate; default 4e-3
	Beta1     float64 // Adam β1 (both sides); default 0.9
	Beta2     float64 // Adam β2 (both sides); default 0.999
	ClsWeight float64 // ACGAN auxiliary-loss weight; default 1
	PaperLoss bool    // use the paper's log(1−D) generator objective

	Seed      int64
	EvalEvery int // metric cadence in iterations; 0 disables

	// CrashAt schedules fail-stop worker crashes through the shared
	// membership layer: iteration → worker indices for MD-GAN, round →
	// worker indices for FL-GAN.
	CrashAt map[int][]int
	// UseTCP runs workers over real loopback sockets instead of
	// in-process channels.
	UseTCP bool

	// Extensions (paper §VII).

	// Compress selects the error-feedback wire encoding (MD-GAN only).
	Compress Compression
	// SwapPrec selects the discriminator-swap wire width (MD-GAN only;
	// default SwapFP32 = 4-byte elements on the wire).
	SwapPrec SwapPrecision
	// ActivePerRound activates only a random subset of workers per
	// iteration (MD-GAN) or per round (FL-GAN); 0 = all.
	ActivePerRound int
	// Byzantine marks compromised workers: index → attack mode.
	Byzantine map[int]ByzantineMode
	// Aggregate selects the server's feedback-merge rule.
	Aggregate Aggregation
	// NonIIDSkew, when > 0, shards the dataset with label skew instead
	// of i.i.d. (applies to MD-GAN and FL-GAN).
	NonIIDSkew float64
	// JoinAt schedules dynamic worker joins (paper §IV-A): iteration →
	// fresh data shards, one new worker per shard, each entering with
	// a copy of a live worker's discriminator. Synchronous MD-GAN only.
	JoinAt map[int][]*Dataset

	// Topology-aware aggregation (MD-GAN only).

	// Topology selects the feedback-aggregation overlay: "" or "flat"
	// is the paper's star (every worker reports straight to the
	// server), "tree:<depth>" reduces feedbacks through a tree of
	// worker-side aggregators so server ingress is bounded by its
	// fan-in instead of the cluster size. Synchronous engines only.
	Topology string
	// Fanin overrides the tree's per-node child bound (≥ 2); 0 picks
	// ceil(N^(1/depth)) automatically.
	Fanin int
	// SwapSchedule selects the discriminator-swap plan: "" or "ring"
	// is the paper's cyclic permutation (Sattolo), "shuffle" a random
	// pairwise exchange, "gossip[:pairs]" a sparse subset of pairs per
	// swap. Non-ring schedules are synchronous-only.
	SwapSchedule string

	// Transient-fault tolerance (MD-GAN only).

	// RoundTimeout, when > 0, bounds each round's wait for worker
	// feedbacks: missing workers are suspected (skipped but retained,
	// probed back in when they recover) and the round applies with the
	// feedbacks in hand, subject to Quorum. 0 waits forever (the
	// fail-stop-only behaviour).
	RoundTimeout time.Duration
	// Quorum is the minimum number of feedbacks needed to apply a
	// round after the deadline expires (0 → 1).
	Quorum int
	// SuspectAfter demotes a suspect after this many consecutive
	// misses (0 → the cluster default; < 0 → never demote).
	SuspectAfter int
	// Chaos, when non-nil, wraps the transport in a seeded
	// fault-injecting ChaosNet (drops, delays, duplicates, payload
	// corruption) — pair it with RoundTimeout to exercise the
	// suspect/rejoin machinery deterministically.
	Chaos *ChaosConfig

	// Robustness (MD-GAN only).

	// FreeRiders marks free-riding workers: index → one of the
	// FreeRider* modes (fabricated feedback, no local training).
	// Merged into Byzantine; the same index cannot appear in both.
	FreeRiders map[int]ByzantineMode
	// Defense enables the server-side feedback-quality defense
	// (cross-round suspicion scoring → down-weighting → demotion).
	// Synchronous flat-topology runs only.
	Defense bool
	// DefenseTuning overrides the defense's default thresholds (nil
	// keeps them). Ignored unless Defense is set.
	DefenseTuning *DefenseConfig
	// Lifetimes bounds workers' participation windows (temporary
	// discriminators): index → {Join, Retire}. Joining workers must
	// match their JoinAt schedule; retirement is graceful (the final
	// feedback counts, no fault is recorded). Synchronous only.
	Lifetimes map[int]Lifetime
	// JoinWarmup ramps a dynamic joiner's aggregation weight over its
	// first JoinWarmup rounds (0 = full weight immediately).
	JoinWarmup int
}

func (o Options) defaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = MDGAN
	}
	if o.Workers == 0 {
		o.Workers = 10
	}
	if o.Batch == 0 {
		o.Batch = 10
	}
	if o.Iters == 0 {
		o.Iters = 100
	}
	if o.LRG == 0 {
		o.LRG = 1e-3
	}
	if o.LRD == 0 {
		o.LRD = 4e-3
	}
	if o.ClsWeight == 0 {
		o.ClsWeight = 1
	}
	return o
}

// shard partitions the dataset for the distributed algorithms,
// honouring the non-IID knob.
func (o Options) shard(ds *Dataset) []*Dataset {
	if o.NonIIDSkew > 0 {
		return dataset.SplitNonIID(ds, o.Workers, o.NonIIDSkew, o.Seed+500)
	}
	return dataset.Split(ds, o.Workers, o.Seed+500)
}

func (o Options) trainConfig() gan.TrainConfig {
	mode := nn.GenLossNonSaturating
	if o.PaperLoss {
		mode = nn.GenLossPaper
	}
	return gan.TrainConfig{
		Batch: o.Batch, Iters: o.Iters, DiscSteps: o.DiscSteps,
		GenLoss: mode, ClsWeight: o.ClsWeight,
		OptG: opt.AdamConfig{LR: o.LRG, Beta1: o.Beta1, Beta2: o.Beta2},
		OptD: opt.AdamConfig{LR: o.LRD, Beta1: o.Beta1, Beta2: o.Beta2},
		Seed: o.Seed, EvalEvery: o.EvalEvery,
	}
}

// Curve is a metric trajectory (the y-values of Figs. 3, 5, 6).
type Curve struct {
	Name  string
	Iters []int
	Score []float64 // classifier score (MS/IS analogue), higher is better
	FID   []float64 // Fréchet distance, lower is better
}

// Last returns the final (score, fid) point, or zeros when empty.
func (c *Curve) Last() (score, fid float64) {
	if len(c.Iters) == 0 {
		return 0, 0
	}
	return c.Score[len(c.Score)-1], c.FID[len(c.FID)-1]
}

// Evaluator turns a generator into metric points against held-out real
// data.
type Evaluator struct {
	Scorer  *Scorer
	Real    *Dataset
	Samples int // generated/real sample count per evaluation (paper: 500)
	Seed    int64
}

// NewEvaluator builds an evaluator with the paper's 500-sample default.
func NewEvaluator(s *Scorer, real *Dataset, samples int) *Evaluator {
	if samples == 0 {
		samples = 500
	}
	return &Evaluator{Scorer: s, Real: real, Samples: samples, Seed: 12345}
}

// Eval computes (score, FID) for the generator's current parameters.
// The latent draw is seeded per call for run-to-run determinism.
func (e *Evaluator) Eval(g *Generator, iter int) (score, fid float64) {
	rng := rand.New(rand.NewSource(e.Seed + int64(iter)))
	gen, _ := g.Generate(e.Samples, rng, false)
	score = e.Scorer.Score(gen)
	idx := make([]int, e.Samples)
	for i := range idx {
		idx[i] = rng.Intn(e.Real.Len())
	}
	real, _ := e.Real.Batch(idx)
	f, err := e.Scorer.FID(real, gen)
	if err != nil {
		return score, -1
	}
	return score, f
}

// RunResult is the outcome of Run.
type RunResult struct {
	// Curve holds the metric trajectory (empty without an Evaluator or
	// with EvalEvery == 0).
	Curve Curve
	// Traffic is the communication accounting (zero for Standalone,
	// which exchanges no messages).
	Traffic Traffic
	// Live lists surviving workers (MD-GAN and FL-GAN).
	Live []string
	// G is the trained generator (the server's for FL-GAN/MD-GAN).
	G *Generator
	// Iters is the number of generator updates performed.
	Iters int
	// Faults is the transient-fault accounting (MD-GAN only; zero on
	// fault-free runs).
	Faults FaultStats
	// Chaos counts the faults injected by Options.Chaos (zero when no
	// chaos transport was requested).
	Chaos ChaosStats
}

// Run trains with the selected algorithm on ds and returns the result.
// ev may be nil to skip metric evaluation.
func Run(ds *Dataset, arch Arch, o Options, ev *Evaluator) (*RunResult, error) {
	o = o.defaults()
	curve := Curve{Name: string(o.Algorithm)}
	hook := func(it int, g *Generator) {
		if ev == nil {
			return
		}
		s, f := ev.Eval(g, it)
		curve.Iters = append(curve.Iters, it)
		curve.Score = append(curve.Score, s)
		curve.FID = append(curve.FID, f)
	}

	switch o.Algorithm {
	case Standalone:
		g := gan.TrainStandalone(ds, arch, o.trainConfig(), func(it int, m *GAN) { hook(it, m.G) })
		return &RunResult{Curve: curve, G: g.G, Iters: o.Iters}, nil

	case FLGAN:
		shards := o.shard(ds)
		cfg := flgan.Config{
			TrainConfig:    o.trainConfig(),
			Epochs:         o.Epochs,
			CrashAt:        o.CrashAt,
			ActivePerRound: o.ActivePerRound,
		}
		if o.UseTCP {
			net := simnet.NewTCPNet()
			defer net.Close()
			cfg.Net = net
		}
		res, err := flgan.Train(shards, arch, cfg, flgan.EvalFunc(hook))
		if err != nil {
			return nil, err
		}
		return &RunResult{Curve: curve, Traffic: res.Traffic, Live: res.Live, G: res.Model.G, Iters: res.Iters}, nil

	case MDGAN:
		return runMDGAN(o.shard(ds), arch, o, &curve, hook)

	default:
		return nil, fmt.Errorf("mdgan: unknown algorithm %q", o.Algorithm)
	}
}

// mdganConfig maps the facade options onto the core configuration.
func (o Options) mdganConfig() (core.Config, error) {
	topo, err := cluster.ParseTopology(o.Topology, o.Fanin)
	if err != nil {
		return core.Config{}, err
	}
	sched, err := core.ParseSwapSchedule(o.SwapSchedule)
	if err != nil {
		return core.Config{}, err
	}
	byz, err := mergeFreeRiders(o.Byzantine, o.FreeRiders)
	if err != nil {
		return core.Config{}, err
	}
	defense := core.DefenseConfig{Enabled: o.Defense}
	if o.Defense && o.DefenseTuning != nil {
		defense = *o.DefenseTuning
		defense.Enabled = true
	}
	return core.Config{
		TrainConfig:    o.trainConfig(),
		K:              o.K,
		SwapEvery:      o.SwapEvery,
		CrashAt:        o.CrashAt,
		Async:          o.Async,
		Pipeline:       o.Pipeline,
		Compress:       o.Compress,
		SwapPrec:       o.SwapPrec,
		ActivePerRound: o.ActivePerRound,
		Byzantine:      byz,
		Aggregate:      o.Aggregate,
		JoinAt:         o.JoinAt,
		RoundTimeout:   o.RoundTimeout,
		Quorum:         o.Quorum,
		SuspectAfter:   o.SuspectAfter,
		Topology:       topo,
		SwapSched:      sched,
		Defense:        defense,
		Lifetimes:      o.Lifetimes,
		JoinWarmup:     o.JoinWarmup,
	}, nil
}

// runMDGAN wires the transport (loopback TCP and/or the chaos wrapper)
// and runs the core engine, folding fault and chaos accounting into the
// result.
func runMDGAN(shards []*Dataset, arch Arch, o Options, curve *Curve, hook func(int, *Generator)) (*RunResult, error) {
	cfg, err := o.mdganConfig()
	if err != nil {
		return nil, err
	}
	var base simnet.Net
	if o.UseTCP {
		base = simnet.NewTCPNet()
	}
	var chaos *simnet.ChaosNet
	if o.Chaos != nil {
		if base == nil {
			base = simnet.NewChannelNet(0)
		}
		chaos = simnet.WrapChaos(base, *o.Chaos)
		cfg.Net = chaos
	} else {
		cfg.Net = base // nil selects the in-process default
	}
	if cfg.Net != nil {
		defer cfg.Net.Close()
	}
	res, err := core.Train(shards, arch, cfg, core.EvalFunc(hook))
	if err != nil {
		return nil, err
	}
	out := &RunResult{Curve: *curve, Traffic: res.Traffic, Live: res.Live,
		G: res.G, Iters: res.Iters, Faults: res.Faults}
	if chaos != nil {
		out.Chaos = chaos.Stats()
	}
	return out, nil
}

// RunOnShards is Run for pre-split shards (scalability experiments that
// control data-vs-worker scaling explicitly). Standalone is not
// supported here.
func RunOnShards(shards []*Dataset, arch Arch, o Options, ev *Evaluator) (*RunResult, error) {
	o = o.defaults()
	curve := Curve{Name: string(o.Algorithm)}
	hook := func(it int, g *Generator) {
		if ev == nil {
			return
		}
		s, f := ev.Eval(g, it)
		curve.Iters = append(curve.Iters, it)
		curve.Score = append(curve.Score, s)
		curve.FID = append(curve.FID, f)
	}
	switch o.Algorithm {
	case FLGAN:
		cfg := flgan.Config{
			TrainConfig:    o.trainConfig(),
			Epochs:         o.Epochs,
			CrashAt:        o.CrashAt,
			ActivePerRound: o.ActivePerRound,
		}
		res, err := flgan.Train(shards, arch, cfg, flgan.EvalFunc(hook))
		if err != nil {
			return nil, err
		}
		return &RunResult{Curve: curve, Traffic: res.Traffic, Live: res.Live, G: res.Model.G, Iters: res.Iters}, nil
	case MDGAN:
		return runMDGAN(shards, arch, o, &curve, hook)
	default:
		return nil, fmt.Errorf("mdgan: RunOnShards supports fl-gan and md-gan, not %q", o.Algorithm)
	}
}
