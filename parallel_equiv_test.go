package mdgan_test

// Scheduler-under-load equivalence: a BenchmarkMDGANIteration-shaped
// training run with K=10 simulated workers must produce the same model
// whether the kernels fan out across the work-stealing scheduler or run
// serially. Range splits write disjoint outputs and every element's
// accumulation order is fixed by the kernels (not by which goroutine
// runs a chunk), so the schedule must be bit-invisible; the 1e-9 bound
// below is the tolerance the issue allows, with a bitwise counter
// reported for regressions short of it.

import (
	"math"
	"testing"

	"mdgan"
	"mdgan/internal/parallel"
	"mdgan/internal/tensor"
)

func trainK10(t *testing.T) *mdgan.RunResult {
	t.Helper()
	train := mdgan.SynthDigits(500, 9)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 10, Batch: 10,
		Iters: 12, Seed: 5, K: 2,
	}
	res, err := mdgan.Run(train, mdgan.MLPArch(32), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchedulerEquivalentToSerialSchedule(t *testing.T) {
	// Parallel schedule: force fan-out (grain sized for 8 ways) even on
	// a single-core host — the scheduler still splits and the chunks
	// interleave across the pool and the 10 worker goroutines.
	parallel.SetMaxProcs(8)
	par := trainK10(t)
	// Serial schedule: every region inline on its calling goroutine.
	parallel.SetMaxProcs(1)
	ser := trainK10(t)
	parallel.SetMaxProcs(0)

	pp, sp := par.G.Params(), ser.G.Params()
	if len(pp) != len(sp) {
		t.Fatalf("parameter count differs: %d vs %d", len(pp), len(sp))
	}
	var maxDiff float64
	bitwise := true
	for i := range pp {
		a, b := pp[i].W.Data, sp[i].W.Data
		if len(a) != len(b) {
			t.Fatalf("param %d volume differs: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				bitwise = false
			}
			if d := math.Abs(float64(a[j]) - float64(b[j])); d > maxDiff {
				maxDiff = d
			}
		}
	}
	// Dtype-aware bound: the schedule itself must stay bit-invisible,
	// but the f32 build tolerates residual divergence at the storage
	// epsilon scale should a future kernel reorder within a chunk.
	tol := tensor.Tol(1e-9, 1e-4)
	if maxDiff > tol {
		t.Fatalf("parallel and serial schedules diverged: max |Δw| = %g", maxDiff)
	}
	if !bitwise {
		t.Logf("within %g but not bitwise equal (max |Δw| = %g): split order changed", tol, maxDiff)
	}
}
