package mdgan

// Robustness helpers for the facade: merging the free-rider schedule
// into the Byzantine map, and the CLI spec parsers for the
// -free-riders and -lifetimes flags shared by mdgan-train and
// mdgan-bench.

import (
	"fmt"
	"strconv"
	"strings"
)

// mergeFreeRiders folds the FreeRiders schedule into the Byzantine
// map. Free-rider entries must use a FreeRider* mode, and an index may
// not carry both a Byzantine and a free-rider assignment.
func mergeFreeRiders(byz, fr map[int]ByzantineMode) (map[int]ByzantineMode, error) {
	if len(fr) == 0 {
		return byz, nil
	}
	out := make(map[int]ByzantineMode, len(byz)+len(fr))
	for i, m := range byz {
		out[i] = m
	}
	for i, m := range fr {
		if !m.IsFreeRider() {
			return nil, fmt.Errorf("mdgan: FreeRiders[%d] = %v is not a free-rider mode", i, m)
		}
		if prev, ok := out[i]; ok && prev != m {
			return nil, fmt.Errorf("mdgan: worker %d is both byzantine (%v) and free-rider (%v)", i, prev, m)
		}
		out[i] = m
	}
	return out, nil
}

// freeRiderVariants names the FreeRider* modes for the CLI spec.
var freeRiderVariants = map[string]ByzantineMode{
	"random": FreeRiderRandom,
	"replay": FreeRiderReplay,
	"noise":  FreeRiderScaledNoise,
}

// ParseFreeRiders parses a -free-riders CLI spec into a FreeRiders
// map. Two forms:
//
//	"N"  or "N:variant"        — the first N workers (indices 0..N-1)
//	"i=variant,j=variant,..."  — explicit per-index assignments
//
// where variant is one of "random" (default), "replay", "noise". An
// empty spec yields nil.
func ParseFreeRiders(spec string) (map[int]ByzantineMode, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[int]ByzantineMode)
	if !strings.Contains(spec, "=") {
		count, variant := spec, "random"
		if c, v, ok := strings.Cut(spec, ":"); ok {
			count, variant = c, v
		}
		n, err := strconv.Atoi(count)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mdgan: free-rider count %q", count)
		}
		mode, ok := freeRiderVariants[variant]
		if !ok {
			return nil, fmt.Errorf("mdgan: free-rider variant %q (want random, replay or noise)", variant)
		}
		for i := 0; i < n; i++ {
			out[i] = mode
		}
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		idxStr, variant, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mdgan: free-rider entry %q (want i=variant)", part)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("mdgan: free-rider index %q", idxStr)
		}
		mode, okV := freeRiderVariants[variant]
		if !okV {
			return nil, fmt.Errorf("mdgan: free-rider variant %q (want random, replay or noise)", variant)
		}
		out[idx] = mode
	}
	return out, nil
}

// ParseLifetimes parses a -lifetimes CLI spec "i=join:retire,..." into
// a Lifetimes map. join 0 means present from the start; retire 0 means
// never. An empty spec yields nil.
func ParseLifetimes(spec string) (map[int]Lifetime, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[int]Lifetime)
	for _, part := range strings.Split(spec, ",") {
		idxStr, window, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mdgan: lifetime entry %q (want i=join:retire)", part)
		}
		joinStr, retireStr, ok := strings.Cut(window, ":")
		if !ok {
			return nil, fmt.Errorf("mdgan: lifetime window %q (want join:retire)", window)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("mdgan: lifetime index %q", idxStr)
		}
		join, err := strconv.Atoi(joinStr)
		if err != nil {
			return nil, fmt.Errorf("mdgan: lifetime join %q", joinStr)
		}
		retire, err := strconv.Atoi(retireStr)
		if err != nil {
			return nil, fmt.Errorf("mdgan: lifetime retire %q", retireStr)
		}
		out[idx] = Lifetime{Join: join, Retire: retire}
	}
	return out, nil
}
